//! Two-terminal series-parallel (TTSP) recognition and decomposition.
//!
//! §3.4 of the paper gives a pseudo-polynomial exact algorithm for
//! series-parallel DAGs by decomposing the graph into a rooted binary tree
//! `T_G` of series ("s") and parallel ("p") compositions. This module
//! provides that tree ([`SpTree`], arena-allocated so deep chains cannot
//! overflow the stack) and a recognizer ([`decompose`]) based on the
//! classical series/parallel reduction rules:
//!
//! * **series**: an internal vertex with exactly one incoming and one
//!   outgoing edge is spliced out, concatenating the two activities;
//! * **parallel**: two parallel edges between the same endpoints merge.
//!
//! A single-source/single-sink multidigraph is TTSP iff these rules reduce
//! it to one edge from the source to the sink.

use crate::graph::{Dag, EdgeId};
use crate::topo::is_acyclic;
use std::collections::HashMap;

/// Index of a node inside an [`SpTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpNodeId(pub u32);

impl SpNodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node of the decomposition tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpKind {
    /// A leaf: one activity (edge of the original DAG).
    Leaf(EdgeId),
    /// Series composition: left finishes before right starts.
    Series(SpNodeId, SpNodeId),
    /// Parallel composition: left and right run concurrently.
    Parallel(SpNodeId, SpNodeId),
}

/// Arena-allocated binary series-parallel decomposition tree (`T_G`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpTree {
    nodes: Vec<SpKind>,
    root: SpNodeId,
}

impl SpTree {
    /// Creates a tree consisting of a single leaf.
    pub fn leaf(edge: EdgeId) -> Self {
        SpTree {
            nodes: vec![SpKind::Leaf(edge)],
            root: SpNodeId(0),
        }
    }

    /// Combines two trees in series (`self` then `right`).
    pub fn series(self, right: SpTree) -> Self {
        self.combine(right, true)
    }

    /// Combines two trees in parallel.
    pub fn parallel(self, right: SpTree) -> Self {
        self.combine(right, false)
    }

    fn combine(mut self, right: SpTree, series: bool) -> Self {
        let offset = self.nodes.len() as u32;
        self.nodes.extend(right.nodes.into_iter().map(|k| match k {
            SpKind::Leaf(e) => SpKind::Leaf(e),
            SpKind::Series(a, b) => SpKind::Series(SpNodeId(a.0 + offset), SpNodeId(b.0 + offset)),
            SpKind::Parallel(a, b) => {
                SpKind::Parallel(SpNodeId(a.0 + offset), SpNodeId(b.0 + offset))
            }
        }));
        let left_root = self.root;
        let right_root = SpNodeId(right.root.0 + offset);
        let root = SpNodeId(self.nodes.len() as u32);
        self.nodes.push(if series {
            SpKind::Series(left_root, right_root)
        } else {
            SpKind::Parallel(left_root, right_root)
        });
        self.root = root;
        self
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> SpNodeId {
        self.root
    }

    /// The kind of a tree node.
    #[inline]
    pub fn kind(&self, id: SpNodeId) -> SpKind {
        self.nodes[id.index()]
    }

    /// Total number of tree nodes (leaves + internal).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty (never true for a constructed tree).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of leaves (= number of activities).
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|k| matches!(k, SpKind::Leaf(_)))
            .count()
    }

    /// All leaf edge ids, in tree order.
    pub fn leaves(&self) -> Vec<EdgeId> {
        self.post_order()
            .into_iter()
            .filter_map(|id| match self.kind(id) {
                SpKind::Leaf(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    /// Node ids in post-order (children before parents, root last).
    /// Iterative, so arbitrarily deep trees are fine.
    pub fn post_order(&self) -> Vec<SpNodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        // (node, children_done)
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                out.push(id);
                continue;
            }
            match self.kind(id) {
                SpKind::Leaf(_) => out.push(id),
                SpKind::Series(a, b) | SpKind::Parallel(a, b) => {
                    stack.push((id, true));
                    stack.push((b, false));
                    stack.push((a, false));
                }
            }
        }
        out
    }

    /// Bottom-up fold: `leaf` evaluates activities, `series`/`parallel`
    /// combine child values. This is the skeleton of the §3.4 DP.
    pub fn fold<T>(
        &self,
        mut leaf: impl FnMut(EdgeId) -> T,
        mut series: impl FnMut(T, T) -> T,
        mut parallel: impl FnMut(T, T) -> T,
    ) -> T {
        let order = self.post_order();
        let mut values: Vec<Option<T>> = (0..self.nodes.len()).map(|_| None).collect();
        for id in order {
            let v = match self.kind(id) {
                SpKind::Leaf(e) => leaf(e),
                SpKind::Series(a, b) => {
                    let va = values[a.index()].take().expect("post-order");
                    let vb = values[b.index()].take().expect("post-order");
                    series(va, vb)
                }
                SpKind::Parallel(a, b) => {
                    let va = values[a.index()].take().expect("post-order");
                    let vb = values[b.index()].take().expect("post-order");
                    parallel(va, vb)
                }
            };
            values[id.index()] = Some(v);
        }
        values[self.root.index()].take().expect("root evaluated")
    }

    /// Renders the tree as an S-expression, e.g. `(S e0 (P e1 e2))`.
    /// Iterative (via [`SpTree::fold`]), so deep trees are safe.
    pub fn to_sexpr(&self) -> String {
        self.fold(
            |e| format!("{e}"),
            |a, b| format!("(S {a} {b})"),
            |a, b| format!("(P {a} {b})"),
        )
    }
}

/// Attempts to decompose the DAG `g` (which must be acyclic, with the
/// given source and sink) as a two-terminal series-parallel graph.
///
/// Returns the decomposition tree whose leaves are edge ids of `g`, or
/// `None` if `g` is not TTSP (or not a DAG / not two-terminal).
pub fn decompose<N, E>(
    g: &Dag<N, E>,
    source: crate::NodeId,
    sink: crate::NodeId,
) -> Option<SpTree> {
    if source == sink || g.edge_count() == 0 || !is_acyclic(g) {
        return None;
    }
    // Live super-edges: (src, dst, partial tree). Indexed by slot; dead
    // slots are None.
    struct Super {
        src: u32,
        dst: u32,
        tree: SpTree,
    }
    let mut supers: Vec<Option<Super>> = g
        .edge_refs()
        .map(|e| {
            Some(Super {
                src: e.src.0,
                dst: e.dst.0,
                tree: SpTree::leaf(e.id),
            })
        })
        .collect();

    let n = g.node_count();
    // Incident live super-edge ids per vertex.
    let mut out_inc: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut in_inc: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, s) in supers.iter().enumerate() {
        let s = s.as_ref().unwrap();
        out_inc[s.src as usize].push(i);
        in_inc[s.dst as usize].push(i);
    }

    let compact = |list: &mut Vec<usize>, supers: &[Option<Super>], vertex: u32, outgoing: bool| {
        list.retain(|&i| {
            supers[i]
                .as_ref()
                .is_some_and(|s| if outgoing { s.src == vertex } else { s.dst == vertex })
        });
    };

    let mut live_edges = supers.len();
    loop {
        let mut changed = false;

        // Parallel pass: bucket live edges by endpoints and merge groups.
        let mut buckets: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
        for (i, s) in supers.iter().enumerate() {
            if let Some(s) = s {
                buckets.entry((s.src, s.dst)).or_default().push(i);
            }
        }
        for ((src, dst), group) in buckets {
            if group.len() < 2 {
                continue;
            }
            changed = true;
            let mut acc = supers[group[0]].take().unwrap().tree;
            for &i in &group[1..] {
                acc = acc.parallel(supers[i].take().unwrap().tree);
                live_edges -= 1;
            }
            let slot = group[0];
            supers[slot] = Some(Super {
                src,
                dst,
                tree: acc,
            });
            // Incidence lists still reference dead slots; they are
            // compacted lazily below.
        }

        // Series pass.
        for v in 0..n as u32 {
            if v == source.0 || v == sink.0 {
                continue;
            }
            compact(&mut in_inc[v as usize], &supers, v, false);
            compact(&mut out_inc[v as usize], &supers, v, true);
            if in_inc[v as usize].len() == 1 && out_inc[v as usize].len() == 1 {
                let ein = in_inc[v as usize][0];
                let eout = out_inc[v as usize][0];
                if ein == eout {
                    continue; // degenerate; cannot happen in a DAG
                }
                let a = supers[ein].take().unwrap();
                let b = supers[eout].take().unwrap();
                debug_assert_eq!(a.dst, v);
                debug_assert_eq!(b.src, v);
                let merged = Super {
                    src: a.src,
                    dst: b.dst,
                    tree: a.tree.series(b.tree),
                };
                let dst = merged.dst;
                supers[ein] = Some(merged);
                live_edges -= 1;
                // `ein` keeps its source, so out_inc[src] already lists it;
                // only the (new) destination list needs the entry. The dst
                // of a super-edge only ever advances to vertices that are
                // then spliced out, so this cannot create duplicates.
                in_inc[dst as usize].push(ein);
                in_inc[v as usize].clear();
                out_inc[v as usize].clear();
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    if live_edges != 1 {
        return None;
    }
    let last = supers.into_iter().flatten().next()?;
    if last.src == source.0 && last.dst == sink.0 {
        Some(last.tree)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Dag, NodeId};

    fn two_node() -> (Dag<(), ()>, NodeId, NodeId) {
        let mut g = Dag::new();
        let s = g.add_node(());
        let t = g.add_node(());
        (g, s, t)
    }

    #[test]
    fn single_edge_is_sp() {
        let (mut g, s, t) = two_node();
        let e = g.add_edge(s, t, ()).unwrap();
        let tree = decompose(&g, s, t).unwrap();
        assert_eq!(tree.kind(tree.root()), SpKind::Leaf(e));
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn parallel_edges_are_sp() {
        let (mut g, s, t) = two_node();
        g.add_parallel_edges(s, t, (), 3).unwrap();
        let tree = decompose(&g, s, t).unwrap();
        assert_eq!(tree.leaf_count(), 3);
        assert!(tree.to_sexpr().starts_with("(P"));
    }

    #[test]
    fn chain_is_sp() {
        let mut g: Dag<(), ()> = Dag::new();
        let nodes: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ()).unwrap();
        }
        let tree = decompose(&g, nodes[0], nodes[4]).unwrap();
        assert_eq!(tree.leaf_count(), 4);
        assert!(tree.to_sexpr().contains("(S"));
        assert!(!tree.to_sexpr().contains("(P"));
    }

    #[test]
    fn diamond_is_sp() {
        let mut g: Dag<(), ()> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, ()).unwrap();
        g.add_edge(a, t, ()).unwrap();
        g.add_edge(s, b, ()).unwrap();
        g.add_edge(b, t, ()).unwrap();
        let tree = decompose(&g, s, t).unwrap();
        assert_eq!(tree.leaf_count(), 4);
        // Two series chains composed in parallel.
        let sexpr = tree.to_sexpr();
        assert!(sexpr.starts_with("(P"), "{sexpr}");
    }

    #[test]
    fn wheatstone_bridge_is_not_sp() {
        // The classic non-SP witness: s->a, s->b, a->b, a->t, b->t.
        let mut g: Dag<(), ()> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, ()).unwrap();
        g.add_edge(s, b, ()).unwrap();
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(a, t, ()).unwrap();
        g.add_edge(b, t, ()).unwrap();
        assert!(decompose(&g, s, t).is_none());
    }

    #[test]
    fn nested_composition() {
        // s -> m (two parallel chains), m -> t: P then S at the top.
        let mut g: Dag<(), ()> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let m = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, ()).unwrap();
        g.add_edge(a, m, ()).unwrap();
        g.add_edge(s, b, ()).unwrap();
        g.add_edge(b, m, ()).unwrap();
        g.add_edge(m, t, ()).unwrap();
        let tree = decompose(&g, s, t).unwrap();
        assert_eq!(tree.leaf_count(), 5);
    }

    #[test]
    fn fold_computes_longest_path() {
        // Longest path via fold: leaf=weight, series=+, parallel=max.
        let mut g: Dag<(), u64> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, 3).unwrap();
        g.add_edge(a, t, 4).unwrap();
        g.add_edge(s, t, 5).unwrap();
        let tree = decompose(&g, s, t).unwrap();
        let longest = tree.fold(|e| *g.edge(e), |x, y| x + y, |x, y| x.max(y));
        assert_eq!(longest, 7);
    }

    #[test]
    fn manual_builders_match_sexpr() {
        let t = SpTree::leaf(EdgeId(0))
            .series(SpTree::leaf(EdgeId(1)))
            .parallel(SpTree::leaf(EdgeId(2)));
        assert_eq!(t.to_sexpr(), "(P (S e0 e1) e2)");
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.post_order().len(), 5);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        let mut g: Dag<(), ()> = Dag::new();
        let n = 50_000;
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ()).unwrap();
        }
        let tree = decompose(&g, nodes[0], nodes[n - 1]).unwrap();
        assert_eq!(tree.leaf_count(), n - 1);
        // post_order and fold are iterative.
        let total = tree.fold(|_| 1u64, |a, b| a + b, |a, b| a + b);
        assert_eq!(total, (n - 1) as u64);
    }

    #[test]
    fn cyclic_input_rejected() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(c, b, ()).unwrap();
        assert!(decompose(&g, a, c).is_none());
    }

    #[test]
    fn disconnected_extra_component_rejected() {
        let (mut g, s, t) = two_node();
        g.add_edge(s, t, ()).unwrap();
        let x = g.add_node(());
        let y = g.add_node(());
        g.add_edge(x, y, ()).unwrap();
        assert!(decompose(&g, s, t).is_none());
    }
}
