//! Graphviz (DOT) export.
//!
//! Every construction in the paper is a figure; this module renders any
//! [`Dag`] to DOT so the gadget builders in `rtt-hardness` and the
//! transformation pipeline in `rtt-core` can be inspected visually.

use crate::graph::Dag;
use std::fmt::Write;

/// Renders `g` as a DOT digraph.
///
/// `node_label` / `edge_label` produce the display strings; empty edge
/// labels are omitted. The output is deterministic (insertion order).
pub fn to_dot<N, E>(
    g: &Dag<N, E>,
    name: &str,
    mut node_label: impl FnMut(crate::NodeId, &N) -> String,
    mut edge_label: impl FnMut(crate::EdgeId, &E) -> String,
) -> String {
    let mut out = String::new();
    // Identifier-sanitize the graph name.
    let name: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    writeln!(out, "digraph {name} {{").unwrap();
    writeln!(out, "  rankdir=LR;").unwrap();
    for v in g.node_ids() {
        let label = escape(&node_label(v, g.node(v)));
        writeln!(out, "  {} [label=\"{}\"];", v.index(), label).unwrap();
    }
    for e in g.edge_refs() {
        let label = escape(&edge_label(e.id, e.weight));
        if label.is_empty() {
            writeln!(out, "  {} -> {};", e.src.index(), e.dst.index()).unwrap();
        } else {
            writeln!(
                out,
                "  {} -> {} [label=\"{}\"];",
                e.src.index(),
                e.dst.index(),
                label
            )
            .unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

/// Shorthand for graphs whose payloads implement `Display`.
pub fn to_dot_display<N: std::fmt::Display, E: std::fmt::Display>(
    g: &Dag<N, E>,
    name: &str,
) -> String {
    to_dot(g, name, |_, n| n.to_string(), |_, e| e.to_string())
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_edges_and_labels() {
        let mut g: Dag<&str, u32> = Dag::new();
        let a = g.add_node("start");
        let b = g.add_node("end");
        g.add_edge(a, b, 7).unwrap();
        let dot = to_dot_display(&g, "demo graph!");
        assert!(dot.starts_with("digraph demo_graph_ {"));
        assert!(dot.contains("0 [label=\"start\"]"));
        assert!(dot.contains("0 -> 1 [label=\"7\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_edge_labels_omitted() {
        let mut g: Dag<&str, &str> = Dag::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, "").unwrap();
        let dot = to_dot_display(&g, "g");
        assert!(dot.contains("0 -> 1;"));
        assert!(!dot.contains("label=\"\"]"));
    }

    #[test]
    fn quotes_escaped() {
        let mut g: Dag<&str, &str> = Dag::new();
        g.add_node("say \"hi\"");
        let dot = to_dot_display(&g, "g");
        assert!(dot.contains("say \\\"hi\\\""));
    }
}
