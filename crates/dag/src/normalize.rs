//! Single-source / single-sink normalization.
//!
//! §2 of the paper assumes w.l.o.g. that the DAG has a single source and a
//! single sink. These helpers add a fresh super-source/super-sink (with
//! caller-supplied payloads for the new node and connecting edges) when the
//! graph has more than one, and report what was done so callers can assign
//! zero-duration activities to the new arcs.

use crate::graph::{Dag, EdgeId, NodeId};

/// Outcome of a normalization step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Normalized {
    /// The graph already satisfied the property; contains the unique node.
    Already(NodeId),
    /// A new node was added; lists the fresh node and the added edges.
    Added {
        /// The new super-source or super-sink.
        node: NodeId,
        /// Edges connecting the new node to the previous sources/sinks.
        edges: Vec<EdgeId>,
    },
}

impl Normalized {
    /// The single source/sink after normalization.
    pub fn node(&self) -> NodeId {
        match self {
            Normalized::Already(n) => *n,
            Normalized::Added { node, .. } => *node,
        }
    }
}

/// Ensures the graph has exactly one source (in-degree-0 node).
///
/// If several exist, adds `node_payload` as a super-source with one
/// `edge_payload` edge to each former source. Panics on empty graphs
/// (an empty graph has no source to normalize).
pub fn ensure_single_source<N, E: Clone>(
    g: &mut Dag<N, E>,
    node_payload: N,
    edge_payload: E,
) -> Normalized {
    let sources = g.sources();
    assert!(
        !sources.is_empty(),
        "cannot normalize an empty (or cyclic) graph: no sources"
    );
    if sources.len() == 1 {
        return Normalized::Already(sources[0]);
    }
    let s = g.add_node(node_payload);
    let edges = sources
        .iter()
        .map(|&old| g.add_edge(s, old, edge_payload.clone()).expect("valid nodes"))
        .collect();
    Normalized::Added { node: s, edges }
}

/// Ensures the graph has exactly one sink (out-degree-0 node). Dual of
/// [`ensure_single_source`].
pub fn ensure_single_sink<N, E: Clone>(
    g: &mut Dag<N, E>,
    node_payload: N,
    edge_payload: E,
) -> Normalized {
    let sinks = g.sinks();
    assert!(
        !sinks.is_empty(),
        "cannot normalize an empty (or cyclic) graph: no sinks"
    );
    if sinks.len() == 1 {
        return Normalized::Already(sinks[0]);
    }
    let t = g.add_node(node_payload);
    let edges = sinks
        .iter()
        .map(|&old| g.add_edge(old, t, edge_payload.clone()).expect("valid nodes"))
        .collect();
    Normalized::Added { node: t, edges }
}

/// Normalizes both ends; returns `(source, sink)`.
pub fn normalize_source_sink<N: Clone, E: Clone>(
    g: &mut Dag<N, E>,
    node_payload: N,
    edge_payload: E,
) -> (NodeId, NodeId) {
    let s = ensure_single_source(g, node_payload.clone(), edge_payload.clone());
    let t = ensure_single_sink(g, node_payload, edge_payload);
    (s.node(), t.node())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_single() {
        let mut g: Dag<u8, u8> = Dag::new();
        let s = g.add_node(0);
        let t = g.add_node(0);
        g.add_edge(s, t, 0).unwrap();
        assert_eq!(ensure_single_source(&mut g, 9, 9), Normalized::Already(s));
        assert_eq!(ensure_single_sink(&mut g, 9, 9), Normalized::Already(t));
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn adds_super_source_and_sink() {
        let mut g: Dag<u8, u8> = Dag::new();
        let a = g.add_node(1);
        let b = g.add_node(2);
        let c = g.add_node(3);
        let d = g.add_node(4);
        g.add_edge(a, c, 0).unwrap();
        g.add_edge(b, d, 0).unwrap();
        let (s, t) = normalize_source_sink(&mut g, 0, 99);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.sources(), vec![s]);
        assert_eq!(g.sinks(), vec![t]);
        assert_eq!(g.out_degree(s), 2);
        assert_eq!(g.in_degree(t), 2);
        assert_eq!(*g.edge(g.out_edges(s)[0]), 99);
    }

    #[test]
    fn normalization_is_idempotent() {
        let mut g: Dag<u8, u8> = Dag::new();
        let a = g.add_node(1);
        let b = g.add_node(2);
        g.add_node(3); // isolated: both a source and a sink
        g.add_edge(a, b, 0).unwrap();
        let (s1, t1) = normalize_source_sink(&mut g, 0, 0);
        let (s2, t2) = normalize_source_sink(&mut g, 0, 0);
        assert_eq!((s1, t1), (s2, t2));
    }

    #[test]
    #[should_panic(expected = "no sources")]
    fn empty_graph_panics() {
        let mut g: Dag<u8, u8> = Dag::new();
        ensure_single_source(&mut g, 0, 0);
    }
}
