//! Core directed-multigraph type.
//!
//! [`Dag`] is an append-only directed multigraph: nodes and edges are never
//! removed, parallel edges are allowed (the paper's race DAGs use one edge
//! per update, so a node updated `k` times by the same producer carries `k`
//! parallel arcs), and self-loops are rejected. Acyclicity is *not* checked
//! on insertion (that would make construction quadratic); algorithms that
//! require a DAG obtain a topological order via [`crate::topo`] and surface
//! a [`crate::TopoError`] on cyclic input.

use std::fmt;

/// Dense identifier of a node in a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Dense identifier of an edge in a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Errors produced by graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge endpoint does not exist.
    InvalidNode(NodeId),
    /// Self-loops are not representable in a DAG.
    SelfLoop(NodeId),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::InvalidNode(n) => write!(f, "node {n} does not exist"),
            DagError::SelfLoop(n) => write!(f, "self-loop at node {n} is not allowed"),
        }
    }
}

impl std::error::Error for DagError {}

#[derive(Debug, Clone)]
struct EdgeData<E> {
    src: NodeId,
    dst: NodeId,
    weight: E,
}

/// A borrowed view of one edge.
#[derive(Debug, Clone, Copy)]
pub struct EdgeRef<'a, E> {
    /// Edge id.
    pub id: EdgeId,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Edge payload.
    pub weight: &'a E,
}

/// Append-only directed multigraph with node payloads `N` and edge
/// payloads `E`.
#[derive(Debug, Clone, Default)]
pub struct Dag<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeData<E>>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl<N, E> Dag<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Dag {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
        }
    }

    /// Creates an empty graph with reserved capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Dag {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out_adj: Vec::with_capacity(nodes),
            in_adj: Vec::with_capacity(nodes),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (parallel edges counted individually).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(weight);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds a directed edge `src -> dst`.
    ///
    /// Parallel edges are allowed; self-loops and dangling endpoints are
    /// rejected.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: E) -> Result<EdgeId, DagError> {
        if src.index() >= self.nodes.len() {
            return Err(DagError::InvalidNode(src));
        }
        if dst.index() >= self.nodes.len() {
            return Err(DagError::InvalidNode(dst));
        }
        if src == dst {
            return Err(DagError::SelfLoop(src));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData { src, dst, weight });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        Ok(id)
    }

    /// Adds `k` parallel edges `src -> dst` with cloned payloads.
    pub fn add_parallel_edges(
        &mut self,
        src: NodeId,
        dst: NodeId,
        weight: E,
        k: usize,
    ) -> Result<Vec<EdgeId>, DagError>
    where
        E: Clone,
    {
        let mut ids = Vec::with_capacity(k);
        for _ in 0..k {
            ids.push(self.add_edge(src, dst, weight.clone())?);
        }
        Ok(ids)
    }

    /// Node payload accessor.
    #[inline]
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable node payload accessor.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Edge payload accessor.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &E {
        &self.edges[id.index()].weight
    }

    /// Mutable edge payload accessor.
    #[inline]
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut E {
        &mut self.edges[id.index()].weight
    }

    /// Endpoints `(src, dst)` of an edge.
    #[inline]
    pub fn endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[id.index()];
        (e.src, e.dst)
    }

    /// Source endpoint of an edge.
    #[inline]
    pub fn src(&self, id: EdgeId) -> NodeId {
        self.edges[id.index()].src
    }

    /// Destination endpoint of an edge.
    #[inline]
    pub fn dst(&self, id: EdgeId) -> NodeId {
        self.edges[id.index()].dst
    }

    /// Iterator over all node ids in insertion order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterator over all edges as [`EdgeRef`]s.
    pub fn edge_refs(&self) -> impl ExactSizeIterator<Item = EdgeRef<'_, E>> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| EdgeRef {
            id: EdgeId(i as u32),
            src: e.src,
            dst: e.dst,
            weight: &e.weight,
        })
    }

    /// Outgoing edge ids of `n`.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out_adj[n.index()]
    }

    /// Incoming edge ids of `n`.
    #[inline]
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.in_adj[n.index()]
    }

    /// Out-degree of `n` (parallel edges counted).
    #[inline]
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out_adj[n.index()].len()
    }

    /// In-degree of `n` (parallel edges counted). This is the `d_in(x)`
    /// of §1, i.e. the number of updates applied to memory cell `x`.
    #[inline]
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.in_adj[n.index()].len()
    }

    /// Successor node ids of `n` (with multiplicity).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_adj[n.index()].iter().map(|&e| self.dst(e))
    }

    /// Predecessor node ids of `n` (with multiplicity).
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_adj[n.index()].iter().map(|&e| self.src(e))
    }

    /// All nodes with in-degree zero.
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&n| self.in_degree(n) == 0).collect()
    }

    /// All nodes with out-degree zero.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&n| self.out_degree(n) == 0).collect()
    }

    /// Maps node payloads, preserving structure and ids.
    pub fn map_nodes<M>(&self, mut f: impl FnMut(NodeId, &N) -> M) -> Dag<M, E>
    where
        E: Clone,
    {
        Dag {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| f(NodeId(i as u32), n))
                .collect(),
            edges: self.edges.clone(),
            out_adj: self.out_adj.clone(),
            in_adj: self.in_adj.clone(),
        }
    }

    /// Maps edge payloads, preserving structure and ids.
    pub fn map_edges<F>(&self, mut f: impl FnMut(EdgeId, &E) -> F) -> Dag<N, F>
    where
        N: Clone,
    {
        Dag {
            nodes: self.nodes.clone(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, e)| EdgeData {
                    src: e.src,
                    dst: e.dst,
                    weight: f(EdgeId(i as u32), &e.weight),
                })
                .collect(),
            out_adj: self.out_adj.clone(),
            in_adj: self.in_adj.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag<&'static str, u32> {
        let mut g = Dag::new();
        let s = g.add_node("s");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let t = g.add_node("t");
        g.add_edge(s, a, 1).unwrap();
        g.add_edge(s, b, 2).unwrap();
        g.add_edge(a, t, 3).unwrap();
        g.add_edge(b, t, 4).unwrap();
        g
    }

    #[test]
    fn build_and_query() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources(), vec![NodeId(0)]);
        assert_eq!(g.sinks(), vec![NodeId(3)]);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(*g.node(NodeId(1)), "a");
    }

    #[test]
    fn parallel_edges_counted_in_degree() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let ids = g.add_parallel_edges(a, b, (), 5).unwrap();
        assert_eq!(ids.len(), 5);
        assert_eq!(g.in_degree(b), 5);
        assert_eq!(g.out_degree(a), 5);
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        assert_eq!(g.add_edge(a, a, ()), Err(DagError::SelfLoop(a)));
    }

    #[test]
    fn dangling_endpoint_rejected() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let bogus = NodeId(7);
        assert_eq!(g.add_edge(a, bogus, ()), Err(DagError::InvalidNode(bogus)));
        assert_eq!(g.add_edge(bogus, a, ()), Err(DagError::InvalidNode(bogus)));
    }

    #[test]
    fn endpoints_and_refs_consistent() {
        let g = diamond();
        for er in g.edge_refs() {
            assert_eq!(g.endpoints(er.id), (er.src, er.dst));
            assert_eq!(g.edge(er.id), er.weight);
        }
    }

    #[test]
    fn successors_predecessors_multiplicity() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_parallel_edges(a, b, (), 3).unwrap();
        assert_eq!(g.successors(a).count(), 3);
        assert_eq!(g.predecessors(b).count(), 3);
    }

    #[test]
    fn map_nodes_and_edges_preserve_shape() {
        let g = diamond();
        let g2 = g.map_nodes(|_, s| s.len());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(*g2.node(NodeId(0)), 1);
        let g3 = g.map_edges(|_, w| *w * 10);
        assert_eq!(*g3.edge(EdgeId(0)), 10);
        assert_eq!(g3.endpoints(EdgeId(0)), g.endpoints(EdgeId(0)));
    }

    #[test]
    fn display_ids() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(EdgeId(9).to_string(), "e9");
    }
}
