//! # rtt-dag — DAG substrate for the resource-time tradeoff problem
//!
//! A self-contained directed-multigraph library tailored to the needs of
//! the SPAA '19 paper *"Data Races and the Discrete Resource-time Tradeoff
//! Problem with Resource Reuse over Paths"* (Das et al.):
//!
//! * [`Dag`] — an append-only directed multigraph with node and edge
//!   payloads, parallel edges, and O(1) id-indexed access. All problem
//!   DAGs in the paper (race DAGs, activity-on-arc transforms, hardness
//!   gadgets) are built on this type.
//! * [`topo`] — topological ordering, cycle detection, layering.
//! * [`paths`] — longest (critical) paths with node or edge weights, i.e.
//!   the *makespan* of §2, plus reachability and path counting.
//! * [`normalize`] — single-source / single-sink normalization (the paper
//!   assumes w.l.o.g. one source and one sink).
//! * [`sp`] — two-terminal series-parallel recognition and the binary
//!   decomposition tree `T_G` used by the exact DP of §3.4.
//! * [`treewidth`] — tree decompositions and a width/validity checker,
//!   used to verify the explicit width-15 decomposition of Figure 16.
//! * [`gen`] — seeded random DAG generators (layered, fork-join,
//!   series-parallel, chains) used by the Table 1 ratio experiments.
//! * [`dot`] — Graphviz export for every figure-style construction.
//!
//! The library is deliberately free of external graph dependencies; it is
//! part of the reproduced substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod gen;
pub mod graph;
pub mod normalize;
pub mod paths;
pub mod sp;
pub mod topo;
pub mod treewidth;

pub use graph::{Dag, DagError, EdgeId, EdgeRef, NodeId};
pub use normalize::{ensure_single_sink, ensure_single_source, normalize_source_sink};
pub use paths::{longest_path_edges, longest_path_nodes, CriticalPath};
pub use sp::{SpKind, SpTree};
pub use topo::{is_acyclic, topo_order, TopoError};
pub use treewidth::TreeDecomposition;
