//! # rtt-par — deterministic intra-solve parallelism
//!
//! One shared utility for every parallel loop inside a solve:
//! [`map_chunks`] partitions an index range into **fixed chunks**
//! (boundaries depend only on the length and the chunk size, never on
//! the thread count), evaluates each chunk with a pure function, and
//! returns the per-chunk results **in chunk order** so the caller's
//! reduction is a deterministic left fold. Under the repo's standing
//! contract — *a thread count may change what a run costs, never what
//! it emits* — this is the only shape of parallelism the wire-visible
//! solvers are allowed: per-item arithmetic is identical at any thread
//! count, and selection/accumulation happens in index order on the
//! calling thread. Unordered idioms (unscoped `spawn` joins,
//! nondeterministic channel drains) are rejected by
//! `rtt_analyze::source_lint`'s `unordered-parallel-reduction` rule.
//!
//! # The knob
//!
//! The intra-solve thread count is resolved per *calling thread*:
//! an explicit [`with_threads`] scope (how `rtt_engine`'s executor
//! applies `SolveRequest::intra_threads`) wins over the
//! `RTT_SOLVE_THREADS` environment variable, which defaults to 1
//! (serial). Values clamp to `1..=`[`MAX_THREADS`]. The knob is
//! execution telemetry, not semantics: it must never appear on the
//! NDJSON wire (see `rtt_cli::batch`).
//!
//! [`with_forced_chunking`] additionally forces callers down their
//! chunked code path even at 1 thread — how benches measure the
//! 1-thread overhead of the parallel path and how differential tests
//! exercise chunked selection without spawning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;

/// Hard ceiling on the intra-solve thread count (a knob, not a
/// scheduler: oversubscribing beyond this only adds join overhead).
pub const MAX_THREADS: usize = 64;

/// Environment variable consulted when no [`with_threads`] scope is
/// active.
pub const ENV_VAR: &str = "RTT_SOLVE_THREADS";

/// Default columns/items per chunk: large enough that chunk bookkeeping
/// amortizes, small enough that typical pricing loops split across
/// threads.
pub const DEFAULT_CHUNK: usize = 256;

thread_local! {
    static CURRENT: Cell<Option<usize>> = const { Cell::new(None) };
    static FORCE_CHUNKED: Cell<bool> = const { Cell::new(false) };
}

fn clamp_threads(n: usize) -> usize {
    n.clamp(1, MAX_THREADS)
}

fn env_threads() -> usize {
    std::env::var(ENV_VAR)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map(clamp_threads)
        .unwrap_or(1)
}

/// The intra-solve thread count in effect on this thread: the
/// innermost [`with_threads`] scope, else `RTT_SOLVE_THREADS`, else 1.
pub fn current() -> usize {
    CURRENT
        .with(|c| c.get())
        .unwrap_or_else(env_threads)
}

/// Host parallelism (`std::thread::available_parallelism`), 1 when
/// unknown. Callers derive *defaults* from this; the value itself is
/// telemetry and must stay off the wire.
pub fn available() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

struct Restore(&'static std::thread::LocalKey<Cell<Option<usize>>>, Option<usize>);

impl Drop for Restore {
    fn drop(&mut self) {
        self.0.with(|c| c.set(self.1));
    }
}

struct RestoreFlag(&'static std::thread::LocalKey<Cell<bool>>, bool);

impl Drop for RestoreFlag {
    fn drop(&mut self) {
        self.0.with(|c| c.set(self.1));
    }
}

/// Runs `f` with the intra-solve thread count set to `n` (clamped) on
/// this thread, restoring the previous value afterwards — panic-safe,
/// so an isolated solver panic cannot leak its knob into the next
/// request on the same worker.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT.with(|c| c.replace(Some(clamp_threads(n))));
    let _restore = Restore(&CURRENT, prev);
    f()
}

/// [`with_threads`] when the override is optional: `None` leaves the
/// ambient resolution (enclosing scope or environment) untouched.
pub fn with_threads_opt<R>(n: Option<usize>, f: impl FnOnce() -> R) -> R {
    match n {
        Some(n) => with_threads(n, f),
        None => f(),
    }
}

/// Whether chunked code paths are forced on (see
/// [`with_forced_chunking`]).
pub fn chunking_forced() -> bool {
    FORCE_CHUNKED.with(|c| c.get())
}

/// Runs `f` with chunked code paths forced on for this thread, even at
/// 1 thread ([`map_chunks`] then runs every chunk inline, in order, on
/// the calling thread — the "parallel path at 1 thread" the bench
/// bounds against serial). Restores on exit, panic-safe.
pub fn with_forced_chunking<R>(f: impl FnOnce() -> R) -> R {
    let prev = FORCE_CHUNKED.with(|c| c.replace(true));
    let _restore = RestoreFlag(&FORCE_CHUNKED, prev);
    f()
}

/// The single gate call sites use: take the chunked path when more
/// than one intra-solve thread is in effect, or when chunking is
/// forced for overhead measurement / differential testing.
pub fn parallel_enabled() -> bool {
    current() > 1 || chunking_forced()
}

/// Number of fixed chunks a range of `len` items splits into.
pub fn chunk_count(len: usize, chunk_size: usize) -> usize {
    len.div_ceil(chunk_size.max(1))
}

fn chunk_range(c: usize, chunk_size: usize, len: usize) -> Range<usize> {
    let start = c * chunk_size;
    start..(start + chunk_size).min(len)
}

/// Evaluates `f(chunk_index, index_range)` over fixed chunks of
/// `0..len` and returns the results **in chunk order**.
///
/// Chunk boundaries are a pure function of `(len, chunk_size)` — the
/// thread count only distributes chunks over workers (static
/// round-robin on the scoped threads of the `crossbeam` shim), so per-
/// chunk results are bit-identical at any thread count and the caller
/// reduces them as an ordered left fold. With `threads <= 1` (or a
/// single chunk) every chunk runs inline on the calling thread in
/// order: same results, no spawn.
///
/// `f` must be pure with respect to chunk scheduling (it may read
/// shared state, including relaxed atomic *cost* counters, but
/// wire-visible values must depend only on its arguments).
///
/// A panic in any chunk propagates to the caller after all workers
/// join, preserving the executor's panic-isolation semantics.
pub fn map_chunks<R, F>(len: usize, chunk_size: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    let chunk_size = chunk_size.max(1);
    let n_chunks = chunk_count(len, chunk_size);
    let workers = clamp_threads(threads).min(n_chunks.max(1));
    if workers <= 1 {
        return (0..n_chunks)
            .map(|c| f(c, chunk_range(c, chunk_size, len)))
            .collect();
    }
    let parts: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut c = w;
                    while c < n_chunks {
                        out.push((c, f(c, chunk_range(c, chunk_size, len))));
                        c += workers;
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // scatter back into chunk order — the ordered reduction happens in
    // the caller's fold over this Vec, never in arrival order
    let mut slots: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
    for part in parts {
        for (c, r) in part {
            slots[c] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every chunk evaluated exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_boundaries_are_a_function_of_len_only() {
        for threads in [1usize, 2, 4, 7] {
            let ranges = map_chunks(1000, 256, threads, |c, r| (c, r.start, r.end));
            assert_eq!(
                ranges,
                vec![(0, 0, 256), (1, 256, 512), (2, 512, 768), (3, 768, 1000)],
                "threads={threads}"
            );
        }
    }

    #[test]
    fn results_arrive_in_chunk_order_at_any_thread_count() {
        let serial: Vec<u64> =
            map_chunks(5000, 64, 1, |_, r| r.map(|i| i as u64 * 3).sum());
        for threads in [2usize, 3, 4, 8] {
            let par: Vec<u64> =
                map_chunks(5000, 64, threads, |_, r| r.map(|i| i as u64 * 3).sum());
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn ordered_argmax_reduction_is_thread_count_invariant() {
        // a synthetic pricing loop: first index attaining the max wins
        let score = |j: usize| ((j * 7919) % 1000) as f64;
        let pick = |threads: usize| -> Option<usize> {
            let parts = map_chunks(10_000, 128, threads, |_, r| {
                let mut best: Option<(f64, usize)> = None;
                for j in r {
                    let v = score(j);
                    if best.is_none_or(|(b, _)| v > b) {
                        best = Some((v, j));
                    }
                }
                best
            });
            let mut best: Option<(f64, usize)> = None;
            for part in parts.into_iter().flatten() {
                if best.is_none_or(|(b, _)| part.0 > b) {
                    best = Some(part);
                }
            }
            best.map(|(_, j)| j)
        };
        let serial = pick(1);
        assert!(serial.is_some());
        for threads in [2usize, 4, 16] {
            assert_eq!(pick(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_chunk_inputs() {
        let empty: Vec<usize> = map_chunks(0, 256, 4, |_, r| r.len());
        assert!(empty.is_empty());
        let single: Vec<usize> = map_chunks(10, 256, 4, |_, r| r.len());
        assert_eq!(single, vec![10]);
    }

    #[test]
    fn with_threads_scopes_nest_and_restore() {
        assert_eq!(current(), env_threads());
        with_threads(4, || {
            assert_eq!(current(), 4);
            with_threads(2, || assert_eq!(current(), 2));
            assert_eq!(current(), 4);
            with_threads_opt(None, || assert_eq!(current(), 4));
        });
        assert_eq!(current(), env_threads());
    }

    #[test]
    fn with_threads_clamps_and_survives_panics() {
        with_threads(0, || assert_eq!(current(), 1));
        with_threads(1_000_000, || assert_eq!(current(), MAX_THREADS));
        let caught = std::panic::catch_unwind(|| {
            with_threads(8, || panic!("solver panic"));
        });
        assert!(caught.is_err());
        assert_eq!(current(), env_threads(), "knob must not leak past a panic");
    }

    #[test]
    fn forced_chunking_is_scoped() {
        assert!(!chunking_forced());
        with_forced_chunking(|| {
            assert!(chunking_forced());
            assert!(parallel_enabled());
        });
        assert!(!chunking_forced());
    }

    #[test]
    fn worker_panics_propagate_after_join() {
        let caught = std::panic::catch_unwind(|| {
            map_chunks(1000, 10, 4, |c, _| {
                if c == 57 {
                    panic!("chunk 57 panicked");
                }
                c
            })
        });
        assert!(caught.is_err());
    }
}
