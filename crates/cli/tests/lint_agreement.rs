//! PR-9 lint/executor agreement tests: the severity contract that
//! makes `rtt lint` trustworthy as an admission pre-pass.
//!
//! * every line the batch loader rejects carries an **error**
//!   diagnostic, and every error-diagnosed line is rejected — so a
//!   lint-clean corpus cannot fail admission;
//! * lint-clean committed corpora produce zero diagnostics and fully
//!   admit;
//! * every `RTT0xx` code in the registered table is exercised by the
//!   committed bad corpus, and its golden matches the linter's NDJSON
//!   output byte for byte;
//! * on admitted lines, the CLI linter's warnings agree with the
//!   engine-level admission lint over the *built* requests
//!   ([`rtt_engine::lint_requests`]) — the two seams cannot drift.

use rtt_analyze::lint::{Severity, CODES};
use rtt_cli::lint::lint_corpus;
use rtt_cli::build_requests;
use rtt_engine::{lint_requests, PrepCache, Registry};

fn data(name: &str) -> String {
    let path = format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn fixture_registry() -> Registry {
    // the registry corpus_faults runs against: standard + the
    // name-addressed fault-injection fixtures
    let mut registry = Registry::standard();
    registry.register(Box::new(rtt_engine::AlwaysPanicSolver));
    registry.register(Box::new(rtt_engine::AlwaysExhaustSolver));
    registry
}

#[test]
fn error_diagnostics_match_loader_rejections_line_by_line() {
    let corpus = data("corpus_bad.ndjson");
    let registry = Registry::standard();
    for (idx, line) in corpus.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let diags = lint_corpus(line, &registry);
        let lint_rejects = diags.iter().any(|d| d.severity == Severity::Error);
        let cache = PrepCache::new();
        let loader_rejects = build_requests(line, &cache, None, &registry).is_err();
        assert_eq!(
            lint_rejects,
            loader_rejects,
            "line {}: lint errors={:?} but loader {}",
            idx + 1,
            diags,
            if loader_rejects { "rejects" } else { "admits" }
        );
    }
}

#[test]
fn clean_corpora_are_diagnostic_free_and_fully_admit() {
    let registry = Registry::standard();
    for name in ["corpus_smoke.ndjson", "corpus_sweep.ndjson"] {
        let corpus = data(name);
        assert!(
            lint_corpus(&corpus, &registry).is_empty(),
            "{name} must lint clean"
        );
        let cache = PrepCache::new();
        build_requests(&corpus, &cache, None, &registry)
            .unwrap_or_else(|e| panic!("{name} must admit: {e}"));
    }
    // the fault corpus names fixture solvers, so it lints (and loads)
    // against the fixture registry
    let registry = fixture_registry();
    let corpus = data("corpus_faults.ndjson");
    assert!(
        lint_corpus(&corpus, &registry).is_empty(),
        "corpus_faults.ndjson must lint clean"
    );
    let cache = PrepCache::new();
    build_requests(&corpus, &cache, None, &registry).expect("corpus_faults must admit");
}

#[test]
fn bad_corpus_exercises_every_registered_code_and_matches_its_golden() {
    let corpus = data("corpus_bad.ndjson");
    let diags = lint_corpus(&corpus, &Registry::standard());
    for (code, severity, _) in CODES {
        let hits: Vec<_> = diags.iter().filter(|d| d.code == *code).collect();
        assert!(!hits.is_empty(), "{code} is never exercised by corpus_bad");
        assert!(
            hits.iter().all(|d| d.severity == *severity),
            "{code} severity drifted from the registered table"
        );
    }
    let rendered: String = diags.iter().map(|d| d.ndjson() + "\n").collect();
    assert_eq!(
        rendered,
        data("corpus_bad.golden.ndjson"),
        "lint --format ndjson output drifted from the committed golden"
    );
}

#[test]
fn warnings_agree_with_the_engine_admission_lint() {
    // keep only the admitted lines of the bad corpus; on that filtered
    // corpus the CLI linter's findings (all warnings) must agree with
    // the engine's request-level admission lint — code, line, and
    // message
    let registry = Registry::standard();
    let admitted: Vec<String> = data("corpus_bad.ndjson")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter(|l| {
            lint_corpus(l, &registry)
                .iter()
                .all(|d| d.severity != Severity::Error)
        })
        .map(str::to_string)
        .collect();
    assert!(admitted.len() >= 3, "bad corpus should keep its warning lines");
    let filtered = admitted.join("\n");
    let cli_diags = lint_corpus(&filtered, &registry);
    assert!(!cli_diags.is_empty());
    let cache = PrepCache::new();
    let requests = build_requests(&filtered, &cache, None, &registry).expect("admitted lines");
    let engine_diags = lint_requests(&registry, &requests);
    let key = |d: &rtt_analyze::lint::Diagnostic| (d.line, d.code, d.message.clone());
    assert_eq!(
        cli_diags.iter().map(key).collect::<Vec<_>>(),
        engine_diags.iter().map(key).collect::<Vec<_>>(),
        "CLI lint warnings and engine admission lint drifted apart"
    );
}
