//! End-to-end tests of the `rtt` binary: gen → info → solve →
//! min-resource → regimes → dot, all through the real executable.

use std::process::Command;

fn rtt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rtt"))
}

fn gen_instance(dir: &std::path::Path, kind: &str, nodes: usize) -> std::path::PathBuf {
    let out = rtt()
        .args([
            "gen", "--kind", kind, "--nodes", &nodes.to_string(), "--seed", "7",
        ])
        .output()
        .expect("spawn rtt gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let path = dir.join(format!("{kind}.json"));
    std::fs::write(&path, &out.stdout).unwrap();
    path
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rtt-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gen_produces_parseable_instances() {
    let dir = tempdir();
    for kind in ["race", "layered", "sp", "chain"] {
        let path = gen_instance(&dir, kind, 6);
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = rtt_cli::InstanceSpec::from_json_str(&text).unwrap();
        spec.build().unwrap();
    }
}

#[test]
fn race_mm_flows_end_to_end() {
    // the paper's loop through the real binary: generate the Figure 3
    // racy Parallel-MM, then solve and sweep it like any instance
    let dir = tempdir();
    let out = rtt()
        .args(["gen", "--kind", "race-mm", "--n", "8"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let path = dir.join("race-mm.json");
    std::fs::write(&path, &out.stdout).unwrap();

    // every registry solver answers it cleanly through `rtt solve`
    // (race DAGs are not series-parallel, so sp-dp declines — with its
    // documented reason, not a failure)
    for solver in ["bicriteria", "recbinary", "recbinary-improved", "global-greedy"] {
        let out = rtt()
            .args(["solve", path.to_str().unwrap(), "--budget", "130", "--solver", solver])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{solver}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("makespan"), "{solver}: {text}");
    }
    // budget 2 per Z cell (128 total) buys height-1 reducers everywhere:
    // the reported solve carries the Observation 1.1 simulation line
    let out = rtt()
        .args(["solve", path.to_str().unwrap(), "--budget", "128", "--solver", "recbinary"])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("simulated:"), "{text}");

    // and the tradeoff curve sweeps it through the warm LP chain
    let out = rtt()
        .args(["curve", path.to_str().unwrap(), "--budgets", "0:128:32"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 5);
    assert!(text.contains("\"sim_makespan\""), "{text}");
}

#[test]
fn race_forkjoin_gen_is_deterministic_across_runs() {
    let run = || {
        let out = rtt()
            .args(["gen", "--kind", "race-forkjoin", "--seed", "11", "--family", "kway"])
            .output()
            .unwrap();
        assert!(out.status.success());
        out.stdout
    };
    assert_eq!(run(), run(), "same seed must emit identical instances");
}

#[test]
fn info_reports_basics() {
    let dir = tempdir();
    let path = gen_instance(&dir, "race", 6);
    let out = rtt().args(["info", path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("base makespan"), "{text}");
    assert!(text.contains("improvable jobs"), "{text}");
}

#[test]
fn solve_exact_with_plan() {
    let dir = tempdir();
    let path = gen_instance(&dir, "race", 5);
    let out = rtt()
        .args([
            "solve", path.to_str().unwrap(), "--budget", "4", "--solver", "exact", "--plan",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("makespan:"), "{text}");
    assert!(text.contains("total routed:"), "{text}");
}

#[test]
fn solve_bicriteria_reports_lp_bound() {
    let dir = tempdir();
    let path = gen_instance(&dir, "race", 6);
    let out = rtt()
        .args(["solve", path.to_str().unwrap(), "--budget", "8"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("LP lower bound"), "{text}");
}

#[test]
fn solvers_lists_certified_output_columns() {
    let out = rtt().args(["solvers"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // every registry line names its solution form and the certificate
    for line in text.lines() {
        assert!(line.contains("sim_makespan"), "{line}");
    }
    assert!(text.contains("noreuse-exact"), "{text}");
    assert!(text.contains("schedule"), "{text}");
    assert!(text.contains("routed"), "{text}");
}

#[test]
fn regime_solvers_print_the_simulation_certificate() {
    // since PR 5 the regime baselines certify too: `rtt solve` surfaces
    // the Observation 1.1 line for them, budget 0 (the curve anchor)
    // included
    let dir = tempdir();
    let path = gen_instance(&dir, "race", 5);
    for solver in ["noreuse-exact", "noreuse-bicriteria", "global-greedy"] {
        for budget in ["0", "4"] {
            let out = rtt()
                .args([
                    "solve", path.to_str().unwrap(), "--budget", budget, "--solver", solver,
                ])
                .output()
                .unwrap();
            assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
            let text = String::from_utf8_lossy(&out.stdout);
            assert!(text.contains("simulated:"), "{solver} b={budget}: {text}");
        }
    }
}

#[test]
fn sp_solver_on_sp_instance() {
    let dir = tempdir();
    let path = gen_instance(&dir, "sp", 6);
    let out = rtt()
        .args([
            "solve", path.to_str().unwrap(), "--budget", "6", "--solver", "sp",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn min_resource_round_trip() {
    let dir = tempdir();
    let path = gen_instance(&dir, "race", 5);
    // target = base makespan is always reachable with 0 units
    let info = rtt().args(["info", path.to_str().unwrap()]).output().unwrap();
    let text = String::from_utf8_lossy(&info.stdout).to_string();
    let base: u64 = text
        .lines()
        .find(|l| l.starts_with("base makespan"))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().parse().ok())
        .expect("parse base makespan");
    let out = rtt()
        .args([
            "min-resource", path.to_str().unwrap(), "--target", &base.to_string(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("budget needed"));
}

#[test]
fn regimes_prints_all_three() {
    let dir = tempdir();
    let path = gen_instance(&dir, "race", 5);
    let out = rtt()
        .args(["regimes", path.to_str().unwrap(), "--budget", "4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Q1.1"), "{text}");
    assert!(text.contains("Q1.2"), "{text}");
    assert!(text.contains("Q1.3"), "{text}");
}

#[test]
fn dot_is_well_formed() {
    let dir = tempdir();
    let path = gen_instance(&dir, "chain", 4);
    let out = rtt().args(["dot", path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph"), "{text}");
    assert!(text.trim_end().ends_with('}'), "{text}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = rtt().output().unwrap();
    assert!(!out.status.success());
    let out = rtt().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = rtt().args(["solve", "/nonexistent.json", "--budget", "1"]).output().unwrap();
    assert!(!out.status.success());
    let out = rtt().args(["gen", "--kind", "nope"]).output().unwrap();
    assert!(!out.status.success());
}
