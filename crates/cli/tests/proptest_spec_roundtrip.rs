//! Round-trip property tests for the on-disk instance format:
//! `to_json_string` → `from_json_str` → `build` must reproduce the
//! instance, and `from_arc` ∘ `build` must preserve it, over random
//! generated DAGs of every `rtt gen` kind and every duration family.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtt_cli::InstanceSpec;
use rtt_core::ArcInstance;
use rtt_dag::gen;
use rtt_duration::Duration;

/// Deterministic instance from `(kind, family, seed)` — the same
/// construction path `rtt gen` uses.
fn generate(kind: usize, family: usize, seed: u64, nodes: usize) -> ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = match kind % 4 {
        0 => gen::random_race_dag(&mut rng, nodes, nodes),
        1 => gen::layered(&mut rng, 3, nodes.div_ceil(3).max(1), 0.4),
        2 => gen::random_sp(&mut rng, nodes.max(1)).tt,
        _ => gen::chain(nodes.max(1)),
    };
    let fam: fn(u64) -> Duration = match family % 3 {
        0 => Duration::recursive_binary,
        1 => Duration::kway,
        // a non-trivial step family exercises the `step` wire encoding
        _ => |w| Duration::two_point(w.saturating_mul(2), w.max(1), w / 2),
    };
    let inst = rtt_core::Instance::race_dag(&tt.dag, fam).expect("generated DAG is valid");
    rtt_core::to_arc_form(&inst).0
}

/// Structural equality of two arc instances: same shape, same
/// endpoints, same canonical duration tuples, same labels.
fn assert_same_instance(a: &ArcInstance, b: &ArcInstance) {
    let (da, db) = (a.dag(), b.dag());
    assert_eq!(da.node_count(), db.node_count());
    assert_eq!(da.edge_count(), db.edge_count());
    assert_eq!(a.source(), b.source());
    assert_eq!(a.sink(), b.sink());
    for (ea, eb) in da.edge_refs().zip(db.edge_refs()) {
        assert_eq!((ea.src, ea.dst), (eb.src, eb.dst));
        assert_eq!(ea.weight.label, eb.weight.label);
        assert_eq!(
            ea.weight.duration.tuples(),
            eb.weight.duration.tuples(),
            "edge {:?} changed its duration across the round trip",
            ea.id
        );
    }
    // derived quantities follow, but check the cheap ones anyway
    assert_eq!(a.base_makespan(), b.base_makespan());
    assert_eq!(a.ideal_makespan(), b.ideal_makespan());
    assert_eq!(a.saturation_budget(), b.saturation_budget());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `from_arc` ∘ `build` is the identity on arc instances, through
    /// the JSON text round trip.
    #[test]
    fn json_text_round_trip_preserves_instances(
        kind in 0usize..4,
        family in 0usize..3,
        seed in 0u64..10_000,
        nodes in 2usize..10,
    ) {
        let arc = generate(kind, family, seed, nodes);
        let spec = InstanceSpec::from_arc(&arc);
        let text = spec.to_json_string();
        let parsed = InstanceSpec::from_json_str(&text).expect("own output parses");
        let rebuilt = parsed.build().expect("own output builds");
        assert_same_instance(&arc, &rebuilt);
        // and the parsed spec re-serializes to the identical text: the
        // encoding is canonical, not merely equivalent
        prop_assert_eq!(text, parsed.to_json_string());
    }

    /// A second `from_arc` after the round trip yields the same spec —
    /// `from_arc` ∘ `build` is idempotent on the spec side too.
    #[test]
    fn from_arc_build_is_idempotent(
        kind in 0usize..4,
        family in 0usize..3,
        seed in 0u64..10_000,
        nodes in 2usize..8,
    ) {
        let arc = generate(kind, family, seed, nodes);
        let spec = InstanceSpec::from_arc(&arc);
        let once = spec.build().expect("builds");
        let spec2 = InstanceSpec::from_arc(&once);
        prop_assert_eq!(spec.to_json_string(), spec2.to_json_string());
        assert_same_instance(&once, &spec2.build().expect("builds again"));
    }
}
