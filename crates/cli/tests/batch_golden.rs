//! Golden test for the `rtt batch` wire format: the committed smoke
//! corpus must produce byte-identical NDJSON at every thread count —
//! the same check CI runs against the same files.
//!
//! If a deliberate solver or format change alters the output,
//! regenerate the golden file with:
//!
//! ```text
//! cargo run --release -p rtt_cli --bin rtt -- batch \
//!   crates/cli/tests/data/corpus_smoke.ndjson --threads 1 \
//!   --out crates/cli/tests/data/corpus_smoke.golden.ndjson
//! ```

use std::process::Command;

const CORPUS: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/corpus_smoke.ndjson"
);
const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/corpus_smoke.golden.ndjson"
);

fn run_batch(threads: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", CORPUS, "--threads", threads])
        .output()
        .expect("spawn rtt batch");
    assert!(
        out.status.success(),
        "rtt batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("reports are UTF-8")
}

#[test]
fn batch_output_matches_golden_at_every_thread_count() {
    let golden = std::fs::read_to_string(GOLDEN).expect("committed golden output");
    assert!(!golden.trim().is_empty());
    for threads in ["1", "2", "4", "8"] {
        let got = run_batch(threads);
        assert_eq!(
            got, golden,
            "batch output diverged from the golden file at --threads {threads}; \
             see the module docs for how to regenerate after a deliberate change"
        );
    }
}

const FAULT_CORPUS: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/corpus_faults.ndjson"
);
const FAULT_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/corpus_faults.golden.ndjson"
);

/// The fault-injection smoke (same shape CI runs): a corpus mixing a
/// panicking fixture, budget exhaustion under each policy, and healthy
/// requests must match its committed golden byte for byte at every
/// thread count. Regenerate after a deliberate change with the
/// corpus-smoke command above, adding `RTT_FAULT_SOLVERS=1` and the
/// corpus_faults paths.
#[test]
fn fault_injection_batch_matches_golden_at_every_thread_count() {
    let golden = std::fs::read_to_string(FAULT_GOLDEN).expect("committed fault golden");
    // the batch completes: every hazard is contained per report
    assert!(golden.contains("\"status\":\"failed\""));
    assert!(golden.contains("\"status\":\"budget-exhausted\""));
    assert!(golden.contains("\"degraded_from\":\"exact\""));
    assert!(golden.contains("\"warnings\":["));
    for threads in ["1", "2", "4", "8"] {
        let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
            .args(["batch", FAULT_CORPUS, "--threads", threads])
            .env("RTT_FAULT_SOLVERS", "1")
            .output()
            .expect("spawn rtt batch");
        assert!(
            out.status.success(),
            "rtt batch failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let got = String::from_utf8(out.stdout).expect("reports are UTF-8");
        assert_eq!(
            got, golden,
            "fault-injection output diverged from the golden at --threads {threads}"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("1 rejected, 1 degraded, 1 warned, 1 panicked"),
            "stats line must count every hazard: {stderr}"
        );
    }
}

/// Without the env gate the fixture solvers do not exist, so the same
/// corpus fails validation at load time — the fixtures cannot leak into
/// normal serving.
#[test]
fn fault_fixtures_are_absent_without_the_env_gate() {
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", FAULT_CORPUS])
        .output()
        .expect("spawn rtt batch");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown solver \"fixture-panic\""),
        "load-time validation names the missing fixture"
    );
}

#[test]
fn batch_summary_reports_cache_telemetry_on_stderr() {
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", CORPUS, "--threads", "2"])
        .output()
        .expect("spawn rtt batch");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("prep cache"), "{stderr}");
    assert!(stderr.contains("req/s"), "{stderr}");
}

#[test]
fn batch_rejects_empty_and_malformed_corpora() {
    let dir = std::env::temp_dir().join(format!("rtt-batch-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let empty = dir.join("empty.ndjson");
    std::fs::write(&empty, "\n\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", empty.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let bad = dir.join("bad.ndjson");
    std::fs::write(&bad, "{\"instance\":").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("line 1"),
        "errors must name the offending line"
    );
    std::fs::remove_dir_all(&dir).ok();
}
