//! Golden test for the `rtt batch` wire format: the committed smoke
//! corpus must produce byte-identical NDJSON at every thread count —
//! the same check CI runs against the same files.
//!
//! If a deliberate solver or format change alters the output,
//! regenerate the golden file with:
//!
//! ```text
//! cargo run --release -p rtt_cli --bin rtt -- batch \
//!   crates/cli/tests/data/corpus_smoke.ndjson --threads 1 \
//!   --out crates/cli/tests/data/corpus_smoke.golden.ndjson
//! ```

use std::process::Command;

const CORPUS: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/corpus_smoke.ndjson"
);
const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/corpus_smoke.golden.ndjson"
);

fn run_batch(threads: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", CORPUS, "--threads", threads])
        .output()
        .expect("spawn rtt batch");
    assert!(
        out.status.success(),
        "rtt batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("reports are UTF-8")
}

#[test]
fn batch_output_matches_golden_at_every_thread_count() {
    let golden = std::fs::read_to_string(GOLDEN).expect("committed golden output");
    assert!(!golden.trim().is_empty());
    for threads in ["1", "2", "4", "8"] {
        let got = run_batch(threads);
        assert_eq!(
            got, golden,
            "batch output diverged from the golden file at --threads {threads}; \
             see the module docs for how to regenerate after a deliberate change"
        );
    }
}

#[test]
fn batch_summary_reports_cache_telemetry_on_stderr() {
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", CORPUS, "--threads", "2"])
        .output()
        .expect("spawn rtt batch");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("prep cache"), "{stderr}");
    assert!(stderr.contains("req/s"), "{stderr}");
}

#[test]
fn batch_rejects_empty_and_malformed_corpora() {
    let dir = std::env::temp_dir().join(format!("rtt-batch-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let empty = dir.join("empty.ndjson");
    std::fs::write(&empty, "\n\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", empty.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let bad = dir.join("bad.ndjson");
    std::fs::write(&bad, "{\"instance\":").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("line 1"),
        "errors must name the offending line"
    );
    std::fs::remove_dir_all(&dir).ok();
}
