//! Golden test for the `rtt batch` wire format: the committed smoke
//! corpus must produce byte-identical NDJSON at every thread count —
//! the same check CI runs against the same files.
//!
//! If a deliberate solver or format change alters the output,
//! regenerate the golden file with:
//!
//! ```text
//! cargo run --release -p rtt_cli --bin rtt -- batch \
//!   crates/cli/tests/data/corpus_smoke.ndjson --threads 1 \
//!   --out crates/cli/tests/data/corpus_smoke.golden.ndjson
//! ```

use std::process::Command;

const CORPUS: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/corpus_smoke.ndjson"
);
const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/corpus_smoke.golden.ndjson"
);

fn run_batch(threads: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", CORPUS, "--threads", threads])
        .output()
        .expect("spawn rtt batch");
    assert!(
        out.status.success(),
        "rtt batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("reports are UTF-8")
}

#[test]
fn batch_output_matches_golden_at_every_thread_count() {
    let golden = std::fs::read_to_string(GOLDEN).expect("committed golden output");
    assert!(!golden.trim().is_empty());
    for threads in ["1", "2", "4", "8"] {
        let got = run_batch(threads);
        assert_eq!(
            got, golden,
            "batch output diverged from the golden file at --threads {threads}; \
             see the module docs for how to regenerate after a deliberate change"
        );
    }
}

const FAULT_CORPUS: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/corpus_faults.ndjson"
);
const FAULT_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/corpus_faults.golden.ndjson"
);

/// The fault-injection smoke (same shape CI runs): a corpus mixing a
/// panicking fixture, budget exhaustion under each policy, and healthy
/// requests must match its committed golden byte for byte at every
/// thread count. Regenerate after a deliberate change with the
/// corpus-smoke command above, adding `RTT_FAULT_SOLVERS=1` and the
/// corpus_faults paths.
#[test]
fn fault_injection_batch_matches_golden_at_every_thread_count() {
    let golden = std::fs::read_to_string(FAULT_GOLDEN).expect("committed fault golden");
    // the batch completes: every hazard is contained per report
    assert!(golden.contains("\"status\":\"failed\""));
    assert!(golden.contains("\"status\":\"budget-exhausted\""));
    assert!(golden.contains("\"degraded_from\":\"exact\""));
    assert!(golden.contains("\"warnings\":["));
    for threads in ["1", "2", "4", "8"] {
        let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
            .args(["batch", FAULT_CORPUS, "--threads", threads])
            .env("RTT_FAULT_SOLVERS", "1")
            .output()
            .expect("spawn rtt batch");
        assert!(
            out.status.success(),
            "rtt batch failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let got = String::from_utf8(out.stdout).expect("reports are UTF-8");
        assert_eq!(
            got, golden,
            "fault-injection output diverged from the golden at --threads {threads}"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("1 rejected, 1 degraded, 1 warned, 1 panicked"),
            "stats line must count every hazard: {stderr}"
        );
    }
}

/// Without the env gate the fixture solvers do not exist, so the same
/// corpus fails validation at load time — the fixtures cannot leak into
/// normal serving.
#[test]
fn fault_fixtures_are_absent_without_the_env_gate() {
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", FAULT_CORPUS])
        .output()
        .expect("spawn rtt batch");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown solver \"fixture-panic\""),
        "load-time validation names the missing fixture"
    );
}

const SWEEP_CORPUS: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/corpus_sweep.ndjson"
);
const SWEEP_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/corpus_sweep.golden.ndjson"
);

/// The sweep corpus (wire-reachable `budgets` lines: duplicates, a
/// relabeled twin, mixed plain traffic, and a budgeted sweep that must
/// bypass the chained path) matches its committed golden byte for byte
/// at every thread count, with the reuse cache off and on, and across
/// a `--cache-save` → `--cache-load` restart. One golden serves every
/// mode: caches change cost, never bytes. Regenerate with the
/// corpus-smoke command above, swapping in the corpus_sweep paths.
#[test]
fn sweep_batch_matches_golden_across_cache_modes_and_restarts() {
    let golden = std::fs::read_to_string(SWEEP_GOLDEN).expect("committed sweep golden");
    // one line per grid point, curve-point form with the identity prefix
    assert!(golden.contains("{\"id\":\"sweep-a\",\"solver\":\"bicriteria\",\"budget\":0,"));
    // the budgeted sweep carries its consumption block per point
    assert!(golden.contains("\"resource_budget\":{\"consumed\":"));
    let dir = std::env::temp_dir().join(format!("rtt-sweep-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spill = dir.join("sweep.cache");
    let spill = spill.to_str().unwrap();
    let run = |extra: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
            .args(["batch", SWEEP_CORPUS])
            .args(extra)
            .output()
            .expect("spawn rtt batch");
        assert!(
            out.status.success(),
            "rtt batch {extra:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("reports are UTF-8");
        (stdout, String::from_utf8_lossy(&out.stderr).into_owned())
    };
    for threads in ["1", "2", "4", "8"] {
        let (plain, _) = run(&["--threads", threads]);
        assert_eq!(plain, golden, "plain sweep bytes diverged at --threads {threads}");
        let (cached, _) = run(&["--threads", threads, "--reuse-cache", "--cache-capacity", "8"]);
        assert_eq!(cached, golden, "--reuse-cache changed sweep bytes at --threads {threads}");
    }
    // restart: spill the solution tier, then serve from the loaded file
    let (saved, save_err) = run(&["--threads", "1", "--cache-save", spill]);
    assert_eq!(saved, golden, "--cache-save changed sweep bytes");
    assert!(save_err.contains("cache spilled:"), "{save_err}");
    let (loaded, load_err) = run(&["--threads", "4", "--cache-load", spill]);
    assert_eq!(loaded, golden, "a loaded cache changed sweep bytes");
    assert!(load_err.contains("cache loaded:"), "{load_err}");
    // the loaded tier actually serves: every cacheable request hits
    assert!(
        load_err.contains("5/5 solution hits"),
        "warm restart must serve from the spilled cache: {load_err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt or version-mismatched spill file fails the whole command
/// loudly — nothing half-loads, nothing reaches stdout.
#[test]
fn corrupt_cache_files_fail_the_command_without_serving() {
    let dir = std::env::temp_dir().join(format!("rtt-cache-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.cache");
    std::fs::write(&bad, "rtt-cache-v0 fp=rtt-fp-v1 entries=0\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", SWEEP_CORPUS, "--cache-load", bad.to_str().unwrap()])
        .output()
        .expect("spawn rtt batch");
    assert!(!out.status.success(), "a bad cache file must fail the command");
    assert!(out.stdout.is_empty(), "no reports may be served");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--cache-load"), "{stderr}");
    assert!(stderr.contains("rtt-cache-v0"), "the error names the found tag: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_summary_reports_cache_telemetry_on_stderr() {
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", CORPUS, "--threads", "2"])
        .output()
        .expect("spawn rtt batch");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("prep cache"), "{stderr}");
    assert!(stderr.contains("req/s"), "{stderr}");
}

#[test]
fn batch_rejects_empty_and_malformed_corpora() {
    let dir = std::env::temp_dir().join(format!("rtt-batch-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let empty = dir.join("empty.ndjson");
    std::fs::write(&empty, "\n\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", empty.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let bad = dir.join("bad.ndjson");
    std::fs::write(&bad, "{\"instance\":").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["batch", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("line 1"),
        "errors must name the offending line"
    );
    std::fs::remove_dir_all(&dir).ok();
}
