//! Differential property test for the PR 7 cache contract: **a cache
//! may change what a run costs, never what it emits.**
//!
//! On corpora of duplicated, *relabeled*, and duration-perturbed
//! instances, the rendered NDJSON report stream must be byte-identical
//! with the reuse cache on or off, at every thread count — and
//! reordering the corpus must permute the report lines without
//! changing a single byte of any line.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtt_cli::batch::{build_requests, report_line};
use rtt_cli::spec::{DurationSpec, EdgeSpec, InstanceSpec};
use rtt_core::ArcInstance;
use rtt_dag::gen;
use rtt_duration::Duration;
use rtt_engine::{run_batch_cached, PrepCache, Registry, ReuseCache};

/// Small random instance (sizes keep the exact solver in the `all`
/// fan-out tractable).
fn generate(kind: usize, family: usize, seed: u64) -> ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = match kind % 3 {
        0 => gen::random_sp(&mut rng, 3).tt,
        1 => gen::layered(&mut rng, 3, 2, 0.4),
        _ => gen::chain(2 + (seed as usize % 3)),
    };
    let fam: fn(u64) -> Duration = match family % 2 {
        0 => Duration::recursive_binary,
        _ => Duration::kway,
    };
    let inst = rtt_core::Instance::race_dag(&tt.dag, fam).expect("generated DAG is valid");
    rtt_core::to_arc_form(&inst).0
}

fn fisher_yates<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

/// A node/arc relabeling of `spec`: same instance up to isomorphism,
/// different document. The canonical fingerprint must see through it.
fn relabel(spec: &InstanceSpec, rng: &mut StdRng) -> InstanceSpec {
    let n = spec.nodes.len();
    let mut perm: Vec<usize> = (0..n).collect();
    fisher_yates(&mut perm, rng);
    let mut edges: Vec<EdgeSpec> = spec
        .edges
        .iter()
        .map(|e| EdgeSpec {
            src: perm[e.src],
            dst: perm[e.dst],
            duration: e.duration.clone(),
            label: e.label.clone(),
        })
        .collect();
    fisher_yates(&mut edges, rng);
    InstanceSpec {
        form: spec.form,
        nodes: spec.nodes.clone(),
        edges,
    }
}

/// A duration-perturbed sibling: same topology, every finite duration
/// nudged — a *different* canonical instance that must never alias the
/// original in any cache tier the batch path can reach.
fn perturb(spec: &InstanceSpec) -> InstanceSpec {
    let edges = spec
        .edges
        .iter()
        .map(|e| EdgeSpec {
            src: e.src,
            dst: e.dst,
            label: e.label.clone(),
            duration: e.duration.as_ref().map(|d| match d {
                DurationSpec::Zero => DurationSpec::Zero,
                DurationSpec::Constant { t } => DurationSpec::Constant { t: t + 1 },
                DurationSpec::Step { tuples } => DurationSpec::Step {
                    tuples: tuples.iter().map(|&(r, t)| (r, t + 1)).collect(),
                },
                DurationSpec::Kway { work } => DurationSpec::Kway { work: work + 1 },
                DurationSpec::Recbinary { work } => DurationSpec::Recbinary { work: work + 1 },
            }),
        })
        .collect();
    InstanceSpec {
        form: spec.form,
        nodes: spec.nodes.clone(),
        edges,
    }
}

/// Runs the full batch pipeline (parse → prep cache → executor →
/// report rendering) and returns the NDJSON output.
fn render(lines: &[String], threads: usize, cached: bool) -> String {
    let corpus = lines.join("\n");
    let registry = Registry::standard();
    let cache = PrepCache::with_capacity(64);
    let reuse = cached.then(|| ReuseCache::new(64));
    let requests =
        build_requests(&corpus, &cache, None, &registry).expect("corpus parses");
    let out = run_batch_cached(&registry, requests, threads, reuse.as_ref());
    let mut s = String::new();
    for r in &out.reports {
        s.push_str(&report_line(r));
        s.push('\n');
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cache_changes_cost_never_bytes(
        kind in 0usize..3,
        family in 0usize..2,
        seed in 0u64..1_000,
        budget in 0u64..8,
        order_seed in 0u64..1_000,
    ) {
        // two base instances, each contributing an original, an exact
        // duplicate, two relabelings (one at a perturbed budget), and a
        // duration-perturbed sibling
        let mut lines = Vec::new();
        for (i, s) in [seed, seed + 7919].into_iter().enumerate() {
            let spec = InstanceSpec::from_arc(&generate(kind, family, s));
            let mut rng = StdRng::seed_from_u64(s ^ 0xD1F);
            let rel = relabel(&spec, &mut rng).to_json().compact();
            let per = perturb(&spec).to_json().compact();
            let doc = spec.to_json().compact();
            lines.push(format!(r#"{{"id":"b{i}-orig","instance":{doc},"budget":{budget}}}"#));
            lines.push(format!(r#"{{"id":"b{i}-dup","instance":{doc},"budget":{budget}}}"#));
            lines.push(format!(r#"{{"id":"b{i}-rel","instance":{rel},"budget":{budget}}}"#));
            lines.push(format!(
                r#"{{"id":"b{i}-relb","instance":{rel},"budget":{}}}"#,
                budget + 1
            ));
            lines.push(format!(r#"{{"id":"b{i}-per","instance":{per},"budget":{budget}}}"#));
        }

        let baseline = render(&lines, 1, false);
        for threads in [2usize, 8] {
            prop_assert_eq!(
                render(&lines, threads, false),
                baseline.clone(),
                "cache-off diverged at {} threads", threads
            );
        }
        for threads in [1usize, 2, 4, 8] {
            prop_assert_eq!(
                render(&lines, threads, true),
                baseline.clone(),
                "cache-on diverged at {} threads", threads
            );
        }

        // reordering the corpus permutes the lines, byte-for-byte — and
        // cache-on/off still agree on the reordered corpus exactly
        let mut shuffled = lines.clone();
        let mut rng = StdRng::seed_from_u64(order_seed);
        fisher_yates(&mut shuffled, &mut rng);
        let off = render(&shuffled, 1, false);
        let on = render(&shuffled, 4, true);
        prop_assert_eq!(on.clone(), off, "cache-on diverged on the reordered corpus");
        let mut a: Vec<&str> = baseline.lines().collect();
        let mut b: Vec<&str> = on.lines().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "reordering changed report bytes, not just their order");
    }
}
