//! Golden test for the `rtt curve` wire format: the committed instance
//! must produce byte-identical NDJSON — the same check CI runs against
//! the same files. The curve runs one warm-started LP chain, so this
//! also pins the warm-start path's determinism end to end.
//!
//! If a deliberate solver or format change alters the output,
//! regenerate the golden file with:
//!
//! ```text
//! cargo run --release -p rtt_cli --bin rtt -- curve \
//!   crates/cli/tests/data/curve_instance.json --budgets 0:15:1 \
//!   --out crates/cli/tests/data/curve_golden.ndjson
//! ```

use std::process::Command;

const INSTANCE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/curve_instance.json"
);
const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/curve_golden.ndjson");

fn run_curve() -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_rtt"))
        .args(["curve", INSTANCE, "--budgets", "0:15:1"])
        .output()
        .expect("spawn rtt curve");
    assert!(
        out.status.success(),
        "rtt curve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("curve points are UTF-8")
}

#[test]
fn curve_output_matches_golden_and_is_stable() {
    let golden = std::fs::read_to_string(GOLDEN).expect("committed golden output");
    let got = run_curve();
    assert_eq!(
        got, golden,
        "curve output diverged from the golden file; see the module docs \
         for how to regenerate after a deliberate change"
    );
    // a second run must be byte-identical (warm-chain determinism)
    assert_eq!(got, run_curve(), "curve output is not reproducible");
    assert_eq!(got.lines().count(), 16, "one line per grid point");
    assert!(
        !got.contains("wall") && !got.contains("_ms"),
        "timing must stay off the wire"
    );
}
