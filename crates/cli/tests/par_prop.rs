//! Differential property tests for intra-solve parallelism: **a
//! thread count may change what a run costs, never what it emits.**
//!
//! Two layers, same shape as `reuse_prop.rs`:
//!
//! * the SP-DP evaluator (`rtt_core::sp_dp`): on random SP instances,
//!   the subtree-parallel evaluation must match the serial walk's root
//!   table, allocation, and work counters exactly at 1/2/4 threads and
//!   under forced chunking;
//! * the batch wire: on corpora mixing single solves and curve sweeps,
//!   the rendered NDJSON must be byte-identical with
//!   `SolveRequest::intra_threads` set to 1, 2, or 4 on every request
//!   (the `--solve-threads` flag in flight) — exercising parallel
//!   pricing, parallel SP-DP, and sharded certification replay behind
//!   the real executor, across batch worker threads.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtt_cli::batch::{build_requests, report_line};
use rtt_cli::spec::InstanceSpec;
use rtt_core::{ArcInstance, Duration};
use rtt_dag::gen;
use rtt_dag::sp::decompose;
use rtt_engine::{run_batch_cached, PrepCache, Registry};

fn generate(kind: usize, family: usize, seed: u64) -> ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = match kind % 3 {
        0 => gen::random_sp(&mut rng, 4).tt,
        1 => gen::layered(&mut rng, 3, 2, 0.4),
        _ => gen::chain(2 + (seed as usize % 3)),
    };
    let fam: fn(u64) -> Duration = match family % 2 {
        0 => Duration::recursive_binary,
        _ => Duration::kway,
    };
    let inst = rtt_core::Instance::race_dag(&tt.dag, fam).expect("generated DAG is valid");
    rtt_core::to_arc_form(&inst).0
}

/// Full batch pipeline at a given intra-solve thread count (applied to
/// every request, exactly as `rtt batch --solve-threads N` does).
fn render(lines: &[String], workers: usize, intra: Option<usize>) -> String {
    let corpus = lines.join("\n");
    let registry = Registry::standard();
    let cache = PrepCache::with_capacity(64);
    let mut requests =
        build_requests(&corpus, &cache, None, &registry).expect("corpus parses");
    if let Some(n) = intra {
        for req in &mut requests {
            req.intra_threads = Some(n);
        }
    }
    let out = run_batch_cached(&registry, requests, workers, None);
    let mut s = String::new();
    for r in &out.reports {
        s.push_str(&report_line(r));
        s.push('\n');
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sp_dp_parallel_eval_matches_serial(
        leaves in 2usize..12,
        family in 0usize..2,
        seed in 0u64..1_000,
        budget in 1u64..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tt = gen::random_sp(&mut rng, leaves).tt;
        let fam: fn(u64) -> Duration = match family {
            0 => Duration::recursive_binary,
            _ => Duration::kway,
        };
        let inst = rtt_core::Instance::race_dag(&tt.dag, fam).expect("valid");
        let (arc, _) = rtt_core::to_arc_form(&inst);
        let d = arc.dag();
        let tree = decompose(d, arc.source(), arc.sink()).expect("race SP stays SP");
        let (table, alloc, stats) = rtt_core::sp_dp::solve_sp_tree_with_stats(
            &tree,
            |e| d.edge(e).duration.clone(),
            budget,
        );
        for threads in [1usize, 2, 4] {
            let (pt, pa, ps) = rtt_core::sp_dp::solve_sp_tree_par(
                &tree,
                |e| d.edge(e).duration.clone(),
                budget,
                threads,
            );
            prop_assert_eq!(&pt, &table, "table diverged at {} threads", threads);
            prop_assert_eq!(&pa, &alloc, "alloc diverged at {} threads", threads);
            prop_assert_eq!(ps.cells, stats.cells);
            prop_assert_eq!(ps.merge_steps, stats.merge_steps);
        }
        // the chunked path at 1 thread, as the overhead bench drives it
        let (ft, fa, _) = rtt_par::with_forced_chunking(|| {
            rtt_core::sp_dp::solve_sp_tree_par(
                &tree,
                |e| d.edge(e).duration.clone(),
                budget,
                1,
            )
        });
        prop_assert_eq!(&ft, &table, "forced chunking diverged");
        prop_assert_eq!(&fa, &alloc, "forced chunking diverged");
    }

    #[test]
    fn intra_solve_threads_never_touch_the_wire(
        kind in 0usize..3,
        family in 0usize..2,
        seed in 0u64..1_000,
        budget in 0u64..8,
    ) {
        // single solves (all-solver fan-out), a min-resource line, and
        // a curve sweep — every wire form the executor can emit
        let mut lines = Vec::new();
        for (i, s) in [seed, seed + 7919].into_iter().enumerate() {
            let spec = InstanceSpec::from_arc(&generate(kind, family, s));
            let doc = spec.to_json().compact();
            lines.push(format!(r#"{{"id":"p{i}-mm","instance":{doc},"budget":{budget}}}"#));
            lines.push(format!(r#"{{"id":"p{i}-mr","instance":{doc},"target":3}}"#));
            lines.push(format!(
                r#"{{"id":"p{i}-sweep","instance":{doc},"budgets":[0,{},{}]}}"#,
                budget + 1,
                budget + 3
            ));
        }
        let baseline = render(&lines, 1, None);
        for intra in [1usize, 2, 4] {
            // across batch workers too: knobs are per-request
            // thread-locals and must not leak between workers
            for workers in [1usize, 2] {
                prop_assert_eq!(
                    render(&lines, workers, Some(intra)),
                    baseline.clone(),
                    "wire diverged: {} intra-solve threads, {} workers",
                    intra, workers
                );
            }
        }
    }
}
