//! The NDJSON batch wire format: `rtt batch` streams *request* lines in
//! and *report* lines out, one JSON document per line.
//!
//! # Request lines
//!
//! ```json
//! {"id":"q1","instance":{...},"budget":8}
//! {"id":"q2","instance":{...},"target":10,"solver":"exact","alpha":0.5}
//! ```
//!
//! | field | required | meaning |
//! |---|---|---|
//! | `instance` | yes | an instance document (same schema as `rtt solve` files, see [`crate::spec::InstanceSpec`]) |
//! | `budget` | one of budget/target/budgets | min-makespan objective with this resource budget |
//! | `target` | one of budget/target/budgets | min-resource objective with this makespan target |
//! | `budgets` | one of budget/target/budgets | a **tradeoff-curve sweep**: min-makespan at every budget of the grid, given as a JSON array (`[0,2,4]`) or a grid string (`"0:16:2"` inclusive, or `"1,8,2"`); answered by one report line per budget, in grid order (see "Sweep response lines") |
//! | `objective` | no | `"min-makespan"` / `"min-resource"`; inferred from `budget`/`target` when omitted; not accepted on `budgets` lines |
//! | `id` | no | echoed in reports; defaults to `line-<n>` (1-based) |
//! | `solver` | no | registry name or alias; omitted = every supporting solver. On `budgets` lines the only accepted value is `bicriteria` (sweeps are a bicriteria-pipeline service), and the batch `--solver` default does not apply |
//! | `alpha` | no | bi-criteria rounding parameter in (0, 1); default 0.5 |
//! | `deadline_ms` | no | per-request deadline from enqueue, in milliseconds — **excluded from the byte-stability guarantee** (expiry depends on wall-clock and thread count) |
//! | `seed` | no | echoed into the request (reserved; solvers are deterministic) |
//! | `max_pivots` | no | resource-budget limit on simplex pivots across every LP the request solves |
//! | `max_merge_steps` | no | limit on combinatorial solver work (SP-DP merge steps and exact-search nodes) |
//! | `max_sim_events` | no | limit on Observation 1.1 certification simulation events |
//! | `max_queue_depth` | no | admission bound: reject if this many requests were enqueued ahead |
//! | `on_exhaustion` | no | `"hard-reject"` (default) / `"degrade"` / `"soft-warn"`, applied to every declared limit; requires at least one `max_*` field |
//!
//! The `max_*` fields opt a request into **budget enforcement**
//! ([`rtt_engine::BudgetSpec`]): counter limits are metered
//! cooperatively *mid-solve* and, unlike `deadline_ms`, charge at
//! deterministic points — a budgeted request's reports (including
//! rejection, degradation, and warnings) are part of the byte-stability
//! guarantee. `on_exhaustion` picks what tripping a limit does:
//! `hard-reject` fails the report as `budget-exhausted`; `degrade`
//! falls back along the declared chain (`exact` → `bicriteria`,
//! `sp-dp` → `bicriteria`, `noreuse-exact` → `noreuse-bicriteria`; a
//! metered-out certification replay degrades the report to
//! analytic-only certificates instead) and marks the report
//! `degraded_from`; `soft-warn` completes at full fidelity and flags
//! the overage. When a whole batch should run under one budget, the
//! `rtt batch` flags `--max-pivots` / `--max-sim-events` /
//! `--on-exhaustion` apply to every line that declares no `max_*`
//! field of its own (a per-line budget overrides the flags entirely).
//!
//! Blank lines are skipped. Structurally identical `instance`
//! documents — including node/arc *relabelings* of one another — are
//! deduplicated through the engine's preprocessing cache, keyed by the
//! relabel-invariant canonical form ([`rtt_core::canonical_form`]):
//! the two-tuple expansion, SP decomposition, and topological order
//! are computed once per equivalence class, however many requests and
//! solvers touch it.
//!
//! # The cache contract: cost, never bytes
//!
//! Every cache in the batch path — the preprocessing cache above and
//! the opt-in `--reuse-cache` solution cache
//! ([`rtt_engine::ReuseCache`]) — obeys one invariant: **a cache may
//! change what a run costs, never what it emits.** The NDJSON stream
//! is byte-identical with caching on, off, or at any `--threads`
//! value and any `--cache-capacity`, because the batch path reuses
//! only *whole deterministic report vectors*: a cached report is a
//! pure function of (canonical instance, objective,
//! budget/target/budgets grid, alpha, seed, solver), every field on
//! the wire included — `work` and the `budget` block replay exactly
//! because nothing about a hit re-runs the solver. Before a cached
//! report is emitted its solution is re-verified from scratch
//! (analytic validation of the solution form, then the Observation 1.1
//! simulation replay), so a reused answer passes the same gauntlet a
//! fresh one does. Requests that declare `max_*` budgets or
//! `deadline_ms` bypass the solution cache entirely. The
//! warm-basis/delta-solving tier of the reuse cache accelerates the
//! `rtt curve` / `solve_curve_cached` API, where it is objective-equal
//! but pivot-count-visible; wire sweeps deliberately never read it
//! (see "Sweep response lines"), so it stays structurally unreachable
//! from this wire format. Cache statistics (instance hits, solution
//! hits, warm-basis hits, delta solves, evictions) go to **stderr
//! only**, never into the NDJSON stream.
//!
//! Thread counts obey the same invariant, in both directions. The
//! inter-request worker count (`--threads`) and the intra-solve thread
//! count (`--solve-threads` / `RTT_SOLVE_THREADS`, driving `rtt_par`'s
//! deterministic parallel pricing, subtree-parallel SP-DP, and sharded
//! certification replay) may change what a batch *costs*, never what
//! it *emits*: stdout is byte-identical at every combination of the
//! two. Neither count is a request-line field, and neither appears
//! anywhere in a report line — worker telemetry prints to stderr only.
//!
//! ## Persistence: `--cache-save` / `--cache-load`
//!
//! `rtt batch --cache-save PATH` spills the solution tier after the
//! batch; `--cache-load PATH` preloads it before (both imply
//! `--reuse-cache`). The file is the versioned `rtt-cache-v1` format
//! ([`rtt_engine::persist`]); a corrupt, truncated, or
//! version-mismatched file fails the command loudly with zero entries
//! loaded — never a half-populated cache. The trust rule extends the
//! invariant above across restarts: a **loaded entry is untrusted**
//! until a request's full key string matches it *and* its solution
//! passes the same fresh analytic re-validation + Observation 1.1
//! replay at serve time; the spill can therefore only change what a
//! run costs, never what it emits, and a warm restart's stdout is
//! byte-identical to a cold run's.
//!
//! A `budget` of **0** is valid and well-defined: it is the
//! zero-resource point of the tradeoff — LP 6–10 routes no flow, every
//! job runs at `t_v(0)`, and the report's `makespan` equals the
//! instance's base makespan with `budget_used` 0 (the committed curve
//! golden pins this point at the head of its `0:15:1` grid).
//!
//! # Race-derived instances
//!
//! Race workloads need no request fields of their own: `rtt gen --kind
//! race-mm` / `race-forkjoin` extract the race DAG `D(P)` from an
//! actual racy program (§1) and serialize it through the same
//! [`crate::spec::InstanceSpec`] arc-form schema — node works become
//! `kway`/`recbinary` duration documents, normalization terminals
//! become `zero` dummies. Anything this module says about instances
//! applies to them verbatim; that is the point of the conversion layer
//! (`rtt_core::from_race`).
//!
//! # Report lines
//!
//! One report per (request, selected solver), in request order then
//! registry order — **deterministic and byte-stable** for a fixed
//! corpus *without `deadline_ms` fields* regardless of `--threads`,
//! which is why wall-clock fields are *not* part of the wire format
//! (timing goes to stderr). Deadlines necessarily reintroduce
//! wall-clock dependence: a `deadline-expired` status can flip to
//! `solved` on a faster run, so keep deadlines out of golden corpora.
//!
//! ```json
//! {"id":"q1","solver":"bicriteria","status":"solved","makespan":4,"budget_used":8,"lp_makespan":3.5,"lp_budget":8.0,"makespan_factor":2.0,"resource_factor":2.0,"work":17,"sim_makespan":4}
//! {"id":"q2","solver":"exact","status":"infeasible","detail":"makespan target below the ideal makespan"}
//! ```
//!
//! `status` is one of `solved`, `unsupported`, `infeasible`,
//! `deadline-expired`, `budget-exhausted`, `failed`; non-`solved`
//! reports carry `detail` instead of the solution fields.
//! `makespan_factor`/`resource_factor` are the solver's certified
//! guarantees (absent for heuristics), and `work` is the solver's own
//! work counter (LP pivots, search nodes, DP cells).
//!
//! `budget-exhausted` means a declared resource budget ran out
//! mid-solve under `hard-reject` (or `degrade` with no fallback);
//! `detail` carries the structured reason (`budget exhausted:
//! <dimension> <consumed> > limit <limit>`). `failed` means the solver
//! panicked: the executor isolates the panic per (request, solver), so
//! the rest of the batch completes, and `detail` carries the payload.
//!
//! Reports of budgeted requests additionally carry:
//!
//! * `degraded_from` — when the `degrade` policy fell back, the solver
//!   that originally exhausted (`solver` is the fallback that actually
//!   answered, and its solution fields and certificates are the
//!   fallback's own);
//! * `budget` — `{"consumed":{"lp_pivots":…,"merge_steps":…,
//!   "sim_events":…},"limits":{…declared limits only…},
//!   "warnings":[…],"degraded":[…]}`: cumulative consumption
//!   (fallback included), the declared limits, soft-warn overage
//!   flags, and degradation notes. Counter dimensions charge
//!   deterministically, so the whole block is byte-stable; requests
//!   without `max_*` fields never carry it, which keeps pre-budget
//!   corpora byte-identical.
//!
//! # Sweep response lines
//!
//! A `budgets` request expands to **one report line per grid budget**,
//! in grid order, each the curve-point form prefixed with the request
//! identity:
//!
//! ```json
//! {"id":"s1","solver":"bicriteria","budget":4,"status":"solved","lp_makespan":2.5,"makespan":5,"budget_used":6,"makespan_factor":2.0,"resource_factor":2.0,"work":17,"sim_makespan":5}
//! ```
//!
//! The body fields are byte-for-byte the `rtt curve` wire form
//! ([`curve_line`]) — one renderer serves both, so the forms cannot
//! drift — including full per-point certification: `sim_makespan` on
//! every point. A whole-sweep failure (infeasible LP, exhausted
//! budget) yields a single non-`solved` line for the request.
//!
//! Determinism rule: a wire sweep is answered by one
//! **self-contained** chained delta session — crash start, then
//! per-point dual reoptimization ([`rtt_engine::execute_sweep_wire`]).
//! No warm state crosses requests, so the per-point `work` counters
//! are a pure function of the request line: byte-identical across
//! `--threads`, cache modes, spills, and restarts, while still paying
//! a small fraction of N independent cold solves (the chain is the
//! delta tier's engine). Cross-request reuse of *identical* sweeps
//! rides the solution cache as a whole per-point vector. Sweeps that
//! declare `max_*` budgets or `deadline_ms` instead degrade to
//! independent per-point cold solves on the request's own meter
//! ([`rtt_engine::execute_sweep_pointwise`]): a budgeted sweep's
//! `consumed` counters must describe that run's metered work, so it
//! must never take a path whose cost depends on cache state. On those
//! lines the consumption block rides under `resource_budget` (the grid
//! point already owns the `budget` key).
//!
//! # Diagnostics
//!
//! `rtt lint <corpus.ndjson>` (and the `rtt batch --lint-first`
//! admission pre-pass) statically checks corpora against this wire
//! format and emits compiler-style diagnostics with stable `RTT0xx`
//! codes. The severity contract: **error** means the line is one this
//! module's [`build_requests`] rejects — a lint-clean corpus cannot
//! fail admission — while **warning** means the line is admitted but
//! declares something vacuous or degraded. The code table (source of
//! truth: [`rtt_analyze::lint::CODES`], cross-tested against the
//! executor's rejections):
//!
//! | code | severity | meaning |
//! |---|---|---|
//! | `RTT001` | error | malformed JSON or wrong field shape (unparseable line, missing `instance`, mistyped field) |
//! | `RTT002` | error | dangling edge endpoint, or an arc-form edge with no duration |
//! | `RTT003` | error | the instance graph contains a cycle |
//! | `RTT004` | error | instance rejected by construction (empty, or not two-terminal) |
//! | `RTT005` | error | invalid duration table (empty, first resource not 0, non-increasing resources, or non-monotone times) |
//! | `RTT006` | error | objective conflict (`budgets` vs `budget`/`target`/`objective`, ambiguous or missing objective fields, unknown objective) |
//! | `RTT007` | error | bad sweep grid (empty, malformed grid string, or a sweep line naming a non-bicriteria solver) |
//! | `RTT008` | error | unknown solver name |
//! | `RTT009` | error | bad budget spec (`on_exhaustion` without a `max_*` limit, or an unknown exhaustion policy) |
//! | `RTT010` | error | alpha outside the open interval (0, 1) |
//! | `RTT011` | warning | zero deadline: the request always expires at dequeue without touching a solver |
//! | `RTT012` | warning | queue-depth limit at least the batch size: the bound can never trip |
//! | `RTT013` | warning | family-tag mismatch: the named solver does not support this instance |
//!
//! Diagnostics are reported in deterministic `(line, code, message)`
//! order, every diagnosable line in one pass (the linter does not stop
//! at the first error the way the loader does). The human rendering is
//! `path:line: severity[code]: message`; `--format ndjson` emits one
//! JSON document per diagnostic:
//!
//! ```json
//! {"line":3,"code":"RTT008","severity":"error","message":"unknown solver \"exat\"; available: ..."}
//! ```
//!
//! Warnings additionally mirror the engine-level admission lint over
//! *built* requests ([`rtt_engine::lint_requests`]) — the seam an
//! embedding that skips the NDJSON front end still gets — and an
//! agreement test pins the two sides together.
//!
//! `sim_makespan` is the **simulation certificate** (Observation 1.1):
//! the engine physically expanded the solution into its update-granular
//! reducer DAG — routed flows for the reuse-over-paths solvers,
//! dedicated levels for the no-reuse (Q1.1) baselines, the held levels
//! of the schedule for global-greedy (Q1.2) — executed it with
//! `rtt_sim`'s event-heap engine, and this is the simulated finish:
//! always `≤ makespan` (the engine panics otherwise), strictly below it
//! when staggered updates pipeline. It is deterministic, hence on the
//! wire, and since PR 5 it is present on **every** solved report of
//! every registry pipeline; it is absent only for skipped simulations
//! (infinite durations, or expansions past the engine's event-count
//! guard `rtt_engine::SIM_EVENT_GUARD`).

use crate::json::Json;
use crate::spec::InstanceSpec;
use rtt_engine::{
    BudgetLimits, BudgetPolicies, BudgetSpec, ExhaustionPolicy, Objective, PrepCache, Registry,
    SolveReport, SolveRequest, SolverSelection, Status,
};
use std::time::Duration as StdDuration;

/// Parses a whole NDJSON corpus into engine requests, deduplicating
/// instances through `cache`. `default_solver` applies to lines without
/// a `solver` field (`None` = all supporting solvers); per-line solver
/// names are validated against `registry` up front, so a typo fails the
/// load with its line number instead of surfacing as a per-report
/// `unsupported` downstream. Errors carry the offending 1-based line
/// number.
pub fn build_requests(
    corpus: &str,
    cache: &PrepCache,
    default_solver: Option<&str>,
    registry: &Registry,
) -> Result<Vec<SolveRequest>, String> {
    let mut out = Vec::new();
    for (idx, line) in corpus.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            parse_request_line(line, lineno, cache, default_solver, registry)
                .map_err(|e| format!("line {lineno}: {e}"))?,
        );
    }
    Ok(out)
}

fn parse_request_line(
    line: &str,
    lineno: usize,
    cache: &PrepCache,
    default_solver: Option<&str>,
    registry: &Registry,
) -> Result<SolveRequest, String> {
    let doc = Json::parse(line).map_err(|e| e.to_string())?;
    let id = match doc.get("id") {
        Some(v) => v.as_str().map_err(|e| e.to_string())?.to_string(),
        None => format!("line-{lineno}"),
    };
    let instance = doc.require("instance").map_err(|e| e.to_string())?;
    let spec = InstanceSpec::from_json(instance).map_err(|e| e.to_string())?;
    // key by the relabel-invariant canonical form (PR 7): structurally
    // identical instances land on one entry even when their documents
    // permute nodes or arcs. The full key string is stored and compared
    // (no hash collisions); the build cost on duplicate lines is the
    // price of recognizing relabelings, and the per-instance
    // preprocessing (expansion, SP decomposition, LP templates) is
    // still computed once per equivalence class.
    let arc = spec.build().map_err(|e| e.to_string())?;
    let key = rtt_core::canonical_form(&arc).key;
    let prepared = cache.get_or_insert(&key, move || arc);
    let budget = match doc.get("budget") {
        Some(v) => Some(v.as_u64().map_err(|e| e.to_string())?),
        None => None,
    };
    let target = match doc.get("target") {
        Some(v) => Some(v.as_u64().map_err(|e| e.to_string())?),
        None => None,
    };
    // a `budgets` field makes the line a tradeoff-curve sweep: a JSON
    // array of grid points, or a grid string in the `rtt curve`
    // `a:b:step` / `a,b,c` syntax
    let grid = match doc.get("budgets") {
        Some(Json::Arr(items)) => Some(
            items
                .iter()
                .map(|v| v.as_u64().map_err(|e| e.to_string()))
                .collect::<Result<Vec<u64>, String>>()?,
        ),
        Some(v) => Some(crate::args::parse_budgets(
            v.as_str().map_err(|_| "budgets must be an array or a grid string")?,
        )?),
        None => None,
    };
    if let Some(budgets) = grid {
        if budget.is_some() || target.is_some() {
            return Err("`budgets` conflicts with `budget`/`target`".into());
        }
        if doc.get("objective").is_some() {
            return Err("`budgets` lines take no `objective` field".into());
        }
        if budgets.is_empty() {
            return Err("`budgets` must name at least one grid point".into());
        }
        // sweeps are a bicriteria-pipeline service: a per-line solver
        // other than bicriteria is a usage error, and the batch
        // --solver default deliberately does not apply
        if let Some(v) = doc.get("solver") {
            let name = v.as_str().map_err(|e| e.to_string())?;
            if registry.resolve(name).map(|s| s.name()) != Some("bicriteria") {
                return Err(format!(
                    "sweep lines are answered by the bicriteria pipeline, not solver {name:?}"
                ));
            }
        }
        let alpha = match doc.get("alpha") {
            Some(v) => v.as_f64().map_err(|e| e.to_string())?,
            None => 0.5,
        };
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(format!("alpha must be in (0, 1), got {alpha}"));
        }
        let deadline = match doc.get("deadline_ms") {
            Some(v) => Some(StdDuration::from_millis(
                v.as_u64().map_err(|e| e.to_string())?,
            )),
            None => None,
        };
        let seed = match doc.get("seed") {
            Some(v) => v.as_u64().map_err(|e| e.to_string())?,
            None => 0,
        };
        let budget_spec = parse_budget_fields(&doc)?;
        return Ok(SolveRequest {
            id,
            prepared,
            objective: Objective::MakespanSweep { budgets },
            alpha,
            solver: SolverSelection::Named("bicriteria".into()),
            deadline,
            seed,
            budget: budget_spec,
            intra_threads: None,
        });
    }
    let objective = match doc.get("objective") {
        Some(v) => match v.as_str().map_err(|e| e.to_string())? {
            "min-makespan" => Objective::MinMakespan {
                budget: budget.ok_or("objective min-makespan needs a `budget`")?,
            },
            "min-resource" => Objective::MinResource {
                target: target.ok_or("objective min-resource needs a `target`")?,
            },
            other => return Err(format!("unknown objective {other:?}")),
        },
        None => match (budget, target) {
            (Some(budget), None) => Objective::MinMakespan { budget },
            (None, Some(target)) => Objective::MinResource { target },
            (Some(_), Some(_)) => {
                return Err("give `objective` to disambiguate budget + target".into())
            }
            (None, None) => return Err("need `budget` or `target`".into()),
        },
    };
    let alpha = match doc.get("alpha") {
        Some(v) => v.as_f64().map_err(|e| e.to_string())?,
        None => 0.5,
    };
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(format!("alpha must be in (0, 1), got {alpha}"));
    }
    let solver = match doc.get("solver") {
        Some(v) => {
            let name = v.as_str().map_err(|e| e.to_string())?;
            if registry.resolve(name).is_none() {
                return Err(format!(
                    "unknown solver {name:?}; available: {}",
                    registry.names().join(", ")
                ));
            }
            SolverSelection::Named(name.to_string())
        }
        None => match default_solver {
            Some(name) => SolverSelection::Named(name.to_string()),
            None => SolverSelection::All,
        },
    };
    let deadline = match doc.get("deadline_ms") {
        Some(v) => Some(StdDuration::from_millis(
            v.as_u64().map_err(|e| e.to_string())?,
        )),
        None => None,
    };
    let seed = match doc.get("seed") {
        Some(v) => v.as_u64().map_err(|e| e.to_string())?,
        None => 0,
    };
    let budget_spec = parse_budget_fields(&doc)?;
    Ok(SolveRequest {
        id,
        prepared,
        objective,
        alpha,
        solver,
        deadline,
        seed,
        budget: budget_spec,
        // intra-solve threading is a CLI/environment knob, never a wire
        // field: request lines cannot carry it (see the module docs)
        intra_threads: None,
    })
}

/// Parses the optional `max_*` / `on_exhaustion` budget fields of a
/// request line into a [`BudgetSpec`] (`None` when no limit is
/// declared — the pre-budget wire format, byte for byte).
fn parse_budget_fields(doc: &Json) -> Result<Option<BudgetSpec>, String> {
    let limit = |field: &str| -> Result<Option<u64>, String> {
        match doc.get(field) {
            Some(v) => Ok(Some(v.as_u64().map_err(|e| e.to_string())?)),
            None => Ok(None),
        }
    };
    let limits = BudgetLimits {
        lp_pivots: limit("max_pivots")?,
        dp_merge_steps: limit("max_merge_steps")?,
        sim_events: limit("max_sim_events")?,
        queue_depth: limit("max_queue_depth")?,
    };
    let policy = match doc.get("on_exhaustion") {
        Some(v) => {
            let name = v.as_str().map_err(|e| e.to_string())?;
            let p = ExhaustionPolicy::parse(name)?;
            if limits.is_empty() {
                return Err("on_exhaustion requires at least one max_* limit".into());
            }
            Some(p)
        }
        None => None,
    };
    if limits.is_empty() {
        return Ok(None);
    }
    Ok(Some(BudgetSpec {
        limits,
        policies: BudgetPolicies::uniform(policy.unwrap_or_default()),
    }))
}

/// Renders one tradeoff-curve point as its canonical NDJSON line (no
/// trailing newline) — the `rtt curve` wire format. Same rules as the
/// batch report stream: no wall-clock fields, deterministic field
/// order, one JSON document per line, points in budget-grid order.
///
/// ```json
/// {"budget":4,"status":"solved","lp_makespan":2.5,"makespan":5,"budget_used":6,"makespan_factor":2.0,"resource_factor":2.0,"work":17,"sim_makespan":5}
/// ```
///
/// `work` counts the simplex pivots the point cost; warm-chained points
/// (every point after the first) typically report a small fraction of
/// the first point's count. `sim_makespan` is the point's Observation
/// 1.1 simulation certificate (see the module docs). A non-`solved`
/// report renders as `{"budget":…,"status":…,"detail":…}`.
pub fn curve_line(budget: u64, r: &SolveReport) -> String {
    Json::Obj(curve_fields(budget, r)).compact()
}

/// The shared field list of a curve point: the `rtt curve` line body
/// and the sweep report-line body are both built here, so the two wire
/// forms cannot drift (a batch sweep line is exactly a curve line with
/// the `id`/`solver` identity prefix).
fn curve_fields(budget: u64, r: &SolveReport) -> Vec<(String, Json)> {
    let mut fields: Vec<(String, Json)> = vec![
        ("budget".into(), Json::UInt(budget)),
        ("status".into(), Json::Str(r.status.as_str().into())),
    ];
    if r.status == Status::Solved {
        if let Some(x) = r.lp_makespan {
            fields.push(("lp_makespan".into(), Json::Float(x)));
        }
        if let Some(m) = r.makespan {
            fields.push(("makespan".into(), Json::UInt(m)));
        }
        if let Some(b) = r.budget_used {
            fields.push(("budget_used".into(), Json::UInt(b)));
        }
        if let Some(x) = r.makespan_factor {
            fields.push(("makespan_factor".into(), Json::Float(x)));
        }
        if let Some(x) = r.resource_factor {
            fields.push(("resource_factor".into(), Json::Float(x)));
        }
        fields.push(("work".into(), Json::UInt(r.work)));
        if let Some(sim) = &r.sim {
            fields.push(("sim_makespan".into(), Json::UInt(sim.simulated)));
        }
    } else {
        fields.push(("detail".into(), Json::Str(r.detail.clone())));
    }
    fields
}

/// Renders one report as its canonical NDJSON line (no trailing
/// newline). Deliberately excludes wall-clock fields — see the module
/// docs on byte stability.
pub fn report_line(r: &SolveReport) -> String {
    let mut fields: Vec<(String, Json)> = vec![
        ("id".into(), Json::Str(r.id.clone())),
        ("solver".into(), Json::Str(r.solver.into())),
    ];
    // per-point sweep reports render as curve points with the identity
    // prefix (see the module docs' "Sweep response lines"). The grid
    // point already owns the `budget` key, so the consumption block
    // rides under `resource_budget` here
    if let Some(b) = r.sweep_budget {
        fields.extend(curve_fields(b, r));
        if let Some(block) = &r.budget {
            fields.push(("resource_budget".into(), budget_block(block)));
        }
        return Json::Obj(fields).compact();
    }
    if let Some(orig) = r.degraded_from {
        fields.push(("degraded_from".into(), Json::Str(orig.into())));
    }
    fields.push(("status".into(), Json::Str(r.status.as_str().into())));
    if r.status == Status::Solved {
        if let Some(m) = r.makespan {
            fields.push(("makespan".into(), Json::UInt(m)));
        }
        if let Some(b) = r.budget_used {
            fields.push(("budget_used".into(), Json::UInt(b)));
        }
        if let Some(x) = r.lp_makespan {
            fields.push(("lp_makespan".into(), Json::Float(x)));
        }
        if let Some(x) = r.lp_budget {
            fields.push(("lp_budget".into(), Json::Float(x)));
        }
        if let Some(x) = r.makespan_factor {
            fields.push(("makespan_factor".into(), Json::Float(x)));
        }
        if let Some(x) = r.resource_factor {
            fields.push(("resource_factor".into(), Json::Float(x)));
        }
        fields.push(("work".into(), Json::UInt(r.work)));
        if let Some(sim) = &r.sim {
            fields.push(("sim_makespan".into(), Json::UInt(sim.simulated)));
        }
    } else {
        fields.push(("detail".into(), Json::Str(r.detail.clone())));
    }
    if let Some(b) = &r.budget {
        fields.push(("budget".into(), budget_block(b)));
    }
    Json::Obj(fields).compact()
}

/// The `budget` object of a budgeted report: cumulative consumption,
/// the declared limits (declared dimensions only), and any soft-warn /
/// degradation flags. Counter dimensions are deterministic, so the
/// block is byte-stable.
fn budget_block(b: &rtt_engine::BudgetReport) -> Json {
    let consumed = Json::Obj(vec![
        ("lp_pivots".into(), Json::UInt(b.consumed.lp_pivots)),
        ("merge_steps".into(), Json::UInt(b.consumed.dp_merge_steps)),
        ("sim_events".into(), Json::UInt(b.consumed.sim_events)),
    ]);
    let mut limits: Vec<(String, Json)> = Vec::new();
    if let Some(x) = b.limits.lp_pivots {
        limits.push(("max_pivots".into(), Json::UInt(x)));
    }
    if let Some(x) = b.limits.dp_merge_steps {
        limits.push(("max_merge_steps".into(), Json::UInt(x)));
    }
    if let Some(x) = b.limits.sim_events {
        limits.push(("max_sim_events".into(), Json::UInt(x)));
    }
    if let Some(x) = b.limits.queue_depth {
        limits.push(("max_queue_depth".into(), Json::UInt(x)));
    }
    let mut fields = vec![
        ("consumed".into(), consumed),
        ("limits".into(), Json::Obj(limits)),
    ];
    if !b.warnings.is_empty() {
        fields.push((
            "warnings".into(),
            Json::Arr(b.warnings.iter().map(|w| Json::Str(w.clone())).collect()),
        ));
    }
    if !b.degraded.is_empty() {
        fields.push((
            "degraded".into(),
            Json::Arr(b.degraded.iter().map(|d| Json::Str(d.clone())).collect()),
        ));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_engine::{run_batch, Registry};

    fn chain_line(id: &str, budget: u64) -> String {
        format!(
            r#"{{"id":"{id}","instance":{{"form":"node","nodes":[{{"label":"s","duration":{{"kind":"zero"}}}},{{"label":"x","duration":{{"kind":"step","tuples":[[0,10],[4,0]]}}}},{{"label":"t","duration":{{"kind":"zero"}}}}],"edges":[{{"src":0,"dst":1}},{{"src":1,"dst":2}}]}},"budget":{budget}}}"#
        )
    }

    #[test]
    fn corpus_parses_and_dedupes_instances() {
        let corpus = format!("{}\n\n{}\n", chain_line("a", 4), chain_line("b", 2));
        let cache = PrepCache::new();
        let reqs = build_requests(&corpus, &cache, None, &Registry::standard()).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].id, "a");
        assert!(matches!(
            reqs[0].objective,
            Objective::MinMakespan { budget: 4 }
        ));
        // same instance document → one cache entry, one hit
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().instance_hits, 1);
    }

    #[test]
    fn bad_lines_name_their_line_number() {
        let cache = PrepCache::new();
        let registry = Registry::standard();
        let err = build_requests("{\"instance\":{}}\n", &cache, None, &registry).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let corpus = format!("{}\nnot json\n", chain_line("a", 1));
        let err = build_requests(&corpus, &cache, None, &registry).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let no_obj = chain_line("a", 1).replace(",\"budget\":1", "");
        let err = build_requests(&no_obj, &cache, None, &registry).unwrap_err();
        assert!(err.contains("need `budget` or `target`"), "{err}");
        // a typo'd per-line solver fails the load, not the report stream
        let typo = chain_line("a", 1).replace("\"budget\":1", "\"budget\":1,\"solver\":\"exat\"");
        let err = build_requests(&typo, &cache, None, &registry).unwrap_err();
        assert!(err.contains("unknown solver \"exat\""), "{err}");
    }

    #[test]
    fn report_lines_are_stable_across_thread_counts() {
        let corpus = (0..6)
            .map(|i| chain_line(&format!("q{i}"), i))
            .collect::<Vec<_>>()
            .join("\n");
        let registry = Registry::standard();
        let render = |threads: usize| {
            let cache = PrepCache::new();
            let reqs = build_requests(&corpus, &cache, None, &registry).unwrap();
            run_batch(&registry, reqs, threads)
                .reports
                .iter()
                .map(report_line)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let one = render(1);
        assert!(one.contains("\"status\":\"solved\""));
        assert!(!one.contains("wall"), "timing must stay off the wire");
        for threads in [2, 4, 8] {
            assert_eq!(one, render(threads), "threads={threads}");
        }
    }

    #[test]
    fn named_default_solver_applies_to_bare_lines() {
        let cache = PrepCache::new();
        let reqs =
            build_requests(&chain_line("a", 3), &cache, Some("bicriteria"), &Registry::standard())
                .unwrap();
        assert_eq!(
            reqs[0].solver,
            SolverSelection::Named("bicriteria".to_string())
        );
    }

    #[test]
    fn budget_fields_parse_into_a_spec() {
        let cache = PrepCache::new();
        let registry = Registry::standard();
        let line = chain_line("a", 3).replace(
            "\"budget\":3",
            "\"budget\":3,\"max_pivots\":100,\"max_merge_steps\":50,\"on_exhaustion\":\"degrade\"",
        );
        let reqs = build_requests(&line, &cache, None, &registry).unwrap();
        let spec = reqs[0].budget.expect("budget declared");
        assert_eq!(spec.limits.lp_pivots, Some(100));
        assert_eq!(spec.limits.dp_merge_steps, Some(50));
        assert_eq!(spec.limits.sim_events, None);
        assert_eq!(spec.policies.lp_pivots, ExhaustionPolicy::Degrade);
        // no max_* fields → no spec (pre-budget wire format)
        let plain = build_requests(&chain_line("b", 3), &cache, None, &registry).unwrap();
        assert!(plain[0].budget.is_none());
        // policy without a limit is a usage error
        let orphan = chain_line("c", 3)
            .replace("\"budget\":3", "\"budget\":3,\"on_exhaustion\":\"soft-warn\"");
        let err = build_requests(&orphan, &cache, None, &registry).unwrap_err();
        assert!(err.contains("requires at least one max_*"), "{err}");
        // a typo'd policy names itself
        let typo = chain_line("d", 3)
            .replace("\"budget\":3", "\"budget\":3,\"max_pivots\":5,\"on_exhaustion\":\"explode\"");
        let err = build_requests(&typo, &cache, None, &registry).unwrap_err();
        assert!(err.contains("unknown exhaustion policy"), "{err}");
    }

    #[test]
    fn budgeted_reports_carry_the_budget_block_on_the_wire() {
        let registry = Registry::standard();
        let cache = PrepCache::new();
        // soft-warn with a 1-step combinatorial limit: the exact solve
        // completes and the overage is flagged deterministically
        let line = chain_line("w", 3).replace(
            "\"budget\":3",
            "\"budget\":3,\"solver\":\"exact\",\"max_merge_steps\":1,\"on_exhaustion\":\"soft-warn\"",
        );
        let reqs = build_requests(&line, &cache, None, &registry).unwrap();
        let out = run_batch(&registry, reqs, 1);
        let rendered = report_line(&out.reports[0]);
        assert!(rendered.contains("\"status\":\"solved\""), "{rendered}");
        assert!(
            rendered.contains("\"budget\":{\"consumed\":{\"lp_pivots\":"),
            "{rendered}"
        );
        assert!(
            rendered.contains("\"limits\":{\"max_merge_steps\":1}"),
            "{rendered}"
        );
        assert!(
            rendered.contains("\"warnings\":[\"dp_merge_steps "),
            "{rendered}"
        );
        // and the block is byte-stable across thread counts
        let rerun = |threads: usize| {
            let cache = PrepCache::new();
            let reqs = build_requests(&line, &cache, None, &registry).unwrap();
            run_batch(&registry, reqs, threads)
                .reports
                .iter()
                .map(report_line)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let one = rerun(1);
        for threads in [2, 4] {
            assert_eq!(one, rerun(threads), "threads={threads}");
        }
    }

    fn sweep_line(id: &str, budgets: &str) -> String {
        chain_line(id, 0).replace("\"budget\":0", &format!("\"budgets\":{budgets}"))
    }

    #[test]
    fn sweep_lines_parse_in_both_spellings() {
        let cache = PrepCache::new();
        let registry = Registry::standard();
        let corpus = format!(
            "{}\n{}\n",
            sweep_line("a", "[0,2,4]"),
            sweep_line("b", "\"0:4:2\"")
        );
        let reqs = build_requests(&corpus, &cache, None, &registry).unwrap();
        for r in &reqs {
            assert!(matches!(
                &r.objective,
                Objective::MakespanSweep { budgets } if *budgets == vec![0, 2, 4]
            ));
            assert_eq!(r.solver, SolverSelection::Named("bicriteria".into()));
        }
        // the batch --solver default does not leak onto sweep lines
        let reqs =
            build_requests(&sweep_line("c", "[1]"), &cache, Some("exact"), &registry).unwrap();
        assert_eq!(reqs[0].solver, SolverSelection::Named("bicriteria".into()));
    }

    #[test]
    fn sweep_line_conflicts_and_bad_grids_are_rejected() {
        let cache = PrepCache::new();
        let registry = Registry::standard();
        let both = chain_line("a", 3).replace("\"budget\":3", "\"budget\":3,\"budgets\":[1,2]");
        let err = build_requests(&both, &cache, None, &registry).unwrap_err();
        assert!(err.contains("conflicts with `budget`"), "{err}");
        let obj = sweep_line("a", "[1,2]")
            .replace("\"budgets\":[1,2]", "\"budgets\":[1,2],\"objective\":\"min-makespan\"");
        let err = build_requests(&obj, &cache, None, &registry).unwrap_err();
        assert!(err.contains("no `objective`"), "{err}");
        let empty = sweep_line("a", "[]");
        let err = build_requests(&empty, &cache, None, &registry).unwrap_err();
        assert!(err.contains("at least one grid point"), "{err}");
        let solver = sweep_line("a", "[1]")
            .replace("\"budgets\":[1]", "\"budgets\":[1],\"solver\":\"exact\"");
        let err = build_requests(&solver, &cache, None, &registry).unwrap_err();
        assert!(err.contains("bicriteria pipeline"), "{err}");
    }

    #[test]
    fn sweep_reports_render_curve_points_and_are_cache_and_thread_stable() {
        let registry = Registry::standard();
        // mixed traffic: a sweep, its exact duplicate, and a plain line
        let corpus = format!(
            "{}\n{}\n{}\n",
            sweep_line("s1", "[0,2,4]"),
            sweep_line("s2", "[0,2,4]"),
            chain_line("q", 4)
        );
        let render = |threads: usize, cached: bool| {
            let cache = PrepCache::new();
            let reuse = cached.then(|| rtt_engine::ReuseCache::new(64));
            let reqs = build_requests(&corpus, &cache, None, &registry).unwrap();
            rtt_engine::run_batch_cached(&registry, reqs, threads, reuse.as_ref())
                .reports
                .iter()
                .map(report_line)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let one = render(1, false);
        // one line per grid point, identity-prefixed curve form
        assert!(
            one.contains("{\"id\":\"s1\",\"solver\":\"bicriteria\",\"budget\":0,\"status\":\"solved\""),
            "{one}"
        );
        assert!(one.contains("\"sim_makespan\":"), "{one}");
        // every sweep point certifies: 3 + 3 sweep lines, all solved
        assert_eq!(one.matches("\"budget\":").count(), 6, "{one}");
        for threads in [1, 2, 4, 8] {
            for cached in [false, true] {
                assert_eq!(
                    one,
                    render(threads, cached),
                    "threads={threads} cached={cached} changed sweep bytes"
                );
            }
        }
        // and the body is byte-for-byte the rtt curve form
        let cache = PrepCache::new();
        let reqs = build_requests(&corpus, &cache, None, &registry).unwrap();
        let out = rtt_engine::run_batch_cached(&registry, reqs, 1, None);
        let r = &out.reports[0];
        let body = curve_line(r.sweep_budget.unwrap(), r);
        let full = report_line(r);
        assert_eq!(
            full,
            format!(
                "{{\"id\":\"s1\",\"solver\":\"bicriteria\",{}",
                &body[1..]
            )
        );
    }

    #[test]
    fn degraded_reports_name_the_original_solver_on_the_wire() {
        let registry = Registry::standard();
        let cache = PrepCache::new();
        let line = chain_line("d", 3).replace(
            "\"budget\":3",
            "\"budget\":3,\"solver\":\"exact\",\"max_merge_steps\":1,\"on_exhaustion\":\"degrade\"",
        );
        let reqs = build_requests(&line, &cache, None, &registry).unwrap();
        let out = run_batch(&registry, reqs, 1);
        let r = &out.reports[0];
        assert_eq!(r.status, Status::Solved, "{}", r.detail);
        let rendered = report_line(r);
        assert!(
            rendered.contains("\"solver\":\"bicriteria\",\"degraded_from\":\"exact\""),
            "{rendered}"
        );
        assert!(
            rendered.contains("\"degraded\":[\"degraded from exact:"),
            "{rendered}"
        );
        // the fallback's certified factors ride the report
        assert!(rendered.contains("\"makespan_factor\":2"), "{rendered}");
    }
}
