//! The NDJSON batch wire format: `rtt batch` streams *request* lines in
//! and *report* lines out, one JSON document per line.
//!
//! # Request lines
//!
//! ```json
//! {"id":"q1","instance":{...},"budget":8}
//! {"id":"q2","instance":{...},"target":10,"solver":"exact","alpha":0.5}
//! ```
//!
//! | field | required | meaning |
//! |---|---|---|
//! | `instance` | yes | an instance document (same schema as `rtt solve` files, see [`crate::spec::InstanceSpec`]) |
//! | `budget` | one of budget/target | min-makespan objective with this resource budget |
//! | `target` | one of budget/target | min-resource objective with this makespan target |
//! | `objective` | no | `"min-makespan"` / `"min-resource"`; inferred from `budget`/`target` when omitted |
//! | `id` | no | echoed in reports; defaults to `line-<n>` (1-based) |
//! | `solver` | no | registry name or alias; omitted = every supporting solver |
//! | `alpha` | no | bi-criteria rounding parameter in (0, 1); default 0.5 |
//! | `deadline_ms` | no | per-request deadline from enqueue, in milliseconds — **excluded from the byte-stability guarantee** (expiry depends on wall-clock and thread count) |
//! | `seed` | no | echoed into the request (reserved; solvers are deterministic) |
//!
//! Blank lines are skipped. Identical `instance` documents are
//! deduplicated through the engine's preprocessing cache: the two-tuple
//! expansion, SP decomposition, and topological order are computed once
//! per distinct instance, however many requests and solvers touch it.
//!
//! A `budget` of **0** is valid and well-defined: it is the
//! zero-resource point of the tradeoff — LP 6–10 routes no flow, every
//! job runs at `t_v(0)`, and the report's `makespan` equals the
//! instance's base makespan with `budget_used` 0 (the committed curve
//! golden pins this point at the head of its `0:15:1` grid).
//!
//! # Race-derived instances
//!
//! Race workloads need no request fields of their own: `rtt gen --kind
//! race-mm` / `race-forkjoin` extract the race DAG `D(P)` from an
//! actual racy program (§1) and serialize it through the same
//! [`crate::spec::InstanceSpec`] arc-form schema — node works become
//! `kway`/`recbinary` duration documents, normalization terminals
//! become `zero` dummies. Anything this module says about instances
//! applies to them verbatim; that is the point of the conversion layer
//! (`rtt_core::from_race`).
//!
//! # Report lines
//!
//! One report per (request, selected solver), in request order then
//! registry order — **deterministic and byte-stable** for a fixed
//! corpus *without `deadline_ms` fields* regardless of `--threads`,
//! which is why wall-clock fields are *not* part of the wire format
//! (timing goes to stderr). Deadlines necessarily reintroduce
//! wall-clock dependence: a `deadline-expired` status can flip to
//! `solved` on a faster run, so keep deadlines out of golden corpora.
//!
//! ```json
//! {"id":"q1","solver":"bicriteria","status":"solved","makespan":4,"budget_used":8,"lp_makespan":3.5,"lp_budget":8.0,"makespan_factor":2.0,"resource_factor":2.0,"work":17,"sim_makespan":4}
//! {"id":"q2","solver":"exact","status":"infeasible","detail":"makespan target below the ideal makespan"}
//! ```
//!
//! `status` is one of `solved`, `unsupported`, `infeasible`,
//! `deadline-expired`; non-`solved` reports carry `detail` instead of
//! the solution fields. `makespan_factor`/`resource_factor` are the
//! solver's certified guarantees (absent for heuristics), and `work` is
//! the solver's own work counter (LP pivots, search nodes, DP cells).
//!
//! `sim_makespan` is the **simulation certificate** (Observation 1.1):
//! the engine physically expanded the solution into its update-granular
//! reducer DAG — routed flows for the reuse-over-paths solvers,
//! dedicated levels for the no-reuse (Q1.1) baselines, the held levels
//! of the schedule for global-greedy (Q1.2) — executed it with
//! `rtt_sim`'s event-heap engine, and this is the simulated finish:
//! always `≤ makespan` (the engine panics otherwise), strictly below it
//! when staggered updates pipeline. It is deterministic, hence on the
//! wire, and since PR 5 it is present on **every** solved report of
//! every registry pipeline; it is absent only for skipped simulations
//! (infinite durations, or expansions past the engine's event-count
//! guard `rtt_engine::SIM_EVENT_GUARD`).

use crate::json::Json;
use crate::spec::InstanceSpec;
use rtt_engine::{
    Objective, PrepCache, Registry, SolveReport, SolveRequest, SolverSelection, Status,
};
use std::time::Duration as StdDuration;

/// Parses a whole NDJSON corpus into engine requests, deduplicating
/// instances through `cache`. `default_solver` applies to lines without
/// a `solver` field (`None` = all supporting solvers); per-line solver
/// names are validated against `registry` up front, so a typo fails the
/// load with its line number instead of surfacing as a per-report
/// `unsupported` downstream. Errors carry the offending 1-based line
/// number.
pub fn build_requests(
    corpus: &str,
    cache: &PrepCache,
    default_solver: Option<&str>,
    registry: &Registry,
) -> Result<Vec<SolveRequest>, String> {
    let mut out = Vec::new();
    for (idx, line) in corpus.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            parse_request_line(line, lineno, cache, default_solver, registry)
                .map_err(|e| format!("line {lineno}: {e}"))?,
        );
    }
    Ok(out)
}

fn parse_request_line(
    line: &str,
    lineno: usize,
    cache: &PrepCache,
    default_solver: Option<&str>,
    registry: &Registry,
) -> Result<SolveRequest, String> {
    let doc = Json::parse(line).map_err(|e| e.to_string())?;
    let id = match doc.get("id") {
        Some(v) => v.as_str().map_err(|e| e.to_string())?.to_string(),
        None => format!("line-{lineno}"),
    };
    let instance = doc.require("instance").map_err(|e| e.to_string())?;
    let spec = InstanceSpec::from_json(instance).map_err(|e| e.to_string())?;
    // key by the canonical compact serialization (stored in full — no
    // hash collisions), not the raw line: formatting differences must
    // not defeat deduplication
    let key = spec.to_json().compact();
    let prepared = match cache.get(&key) {
        Some(hit) => hit,
        None => {
            // build only on first sight: an identical key is an
            // identical spec, so duplicates can't hide build errors
            let arc = spec.build().map_err(|e| e.to_string())?;
            cache.get_or_insert(&key, move || arc)
        }
    };
    let budget = match doc.get("budget") {
        Some(v) => Some(v.as_u64().map_err(|e| e.to_string())?),
        None => None,
    };
    let target = match doc.get("target") {
        Some(v) => Some(v.as_u64().map_err(|e| e.to_string())?),
        None => None,
    };
    let objective = match doc.get("objective") {
        Some(v) => match v.as_str().map_err(|e| e.to_string())? {
            "min-makespan" => Objective::MinMakespan {
                budget: budget.ok_or("objective min-makespan needs a `budget`")?,
            },
            "min-resource" => Objective::MinResource {
                target: target.ok_or("objective min-resource needs a `target`")?,
            },
            other => return Err(format!("unknown objective {other:?}")),
        },
        None => match (budget, target) {
            (Some(budget), None) => Objective::MinMakespan { budget },
            (None, Some(target)) => Objective::MinResource { target },
            (Some(_), Some(_)) => {
                return Err("give `objective` to disambiguate budget + target".into())
            }
            (None, None) => return Err("need `budget` or `target`".into()),
        },
    };
    let alpha = match doc.get("alpha") {
        Some(v) => v.as_f64().map_err(|e| e.to_string())?,
        None => 0.5,
    };
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(format!("alpha must be in (0, 1), got {alpha}"));
    }
    let solver = match doc.get("solver") {
        Some(v) => {
            let name = v.as_str().map_err(|e| e.to_string())?;
            if registry.resolve(name).is_none() {
                return Err(format!(
                    "unknown solver {name:?}; available: {}",
                    registry.names().join(", ")
                ));
            }
            SolverSelection::Named(name.to_string())
        }
        None => match default_solver {
            Some(name) => SolverSelection::Named(name.to_string()),
            None => SolverSelection::All,
        },
    };
    let deadline = match doc.get("deadline_ms") {
        Some(v) => Some(StdDuration::from_millis(
            v.as_u64().map_err(|e| e.to_string())?,
        )),
        None => None,
    };
    let seed = match doc.get("seed") {
        Some(v) => v.as_u64().map_err(|e| e.to_string())?,
        None => 0,
    };
    Ok(SolveRequest {
        id,
        prepared,
        objective,
        alpha,
        solver,
        deadline,
        seed,
    })
}

/// Renders one tradeoff-curve point as its canonical NDJSON line (no
/// trailing newline) — the `rtt curve` wire format. Same rules as the
/// batch report stream: no wall-clock fields, deterministic field
/// order, one JSON document per line, points in budget-grid order.
///
/// ```json
/// {"budget":4,"status":"solved","lp_makespan":2.5,"makespan":5,"budget_used":6,"makespan_factor":2.0,"resource_factor":2.0,"work":17,"sim_makespan":5}
/// ```
///
/// `work` counts the simplex pivots the point cost; warm-chained points
/// (every point after the first) typically report a small fraction of
/// the first point's count. `sim_makespan` is the point's Observation
/// 1.1 simulation certificate (see the module docs). A non-`solved`
/// report renders as `{"budget":…,"status":…,"detail":…}`.
pub fn curve_line(budget: u64, r: &SolveReport) -> String {
    let mut fields: Vec<(String, Json)> = vec![
        ("budget".into(), Json::UInt(budget)),
        ("status".into(), Json::Str(r.status.as_str().into())),
    ];
    if r.status == Status::Solved {
        if let Some(x) = r.lp_makespan {
            fields.push(("lp_makespan".into(), Json::Float(x)));
        }
        if let Some(m) = r.makespan {
            fields.push(("makespan".into(), Json::UInt(m)));
        }
        if let Some(b) = r.budget_used {
            fields.push(("budget_used".into(), Json::UInt(b)));
        }
        if let Some(x) = r.makespan_factor {
            fields.push(("makespan_factor".into(), Json::Float(x)));
        }
        if let Some(x) = r.resource_factor {
            fields.push(("resource_factor".into(), Json::Float(x)));
        }
        fields.push(("work".into(), Json::UInt(r.work)));
        if let Some(sim) = &r.sim {
            fields.push(("sim_makespan".into(), Json::UInt(sim.simulated)));
        }
    } else {
        fields.push(("detail".into(), Json::Str(r.detail.clone())));
    }
    Json::Obj(fields).compact()
}

/// Renders one report as its canonical NDJSON line (no trailing
/// newline). Deliberately excludes wall-clock fields — see the module
/// docs on byte stability.
pub fn report_line(r: &SolveReport) -> String {
    let mut fields: Vec<(String, Json)> = vec![
        ("id".into(), Json::Str(r.id.clone())),
        ("solver".into(), Json::Str(r.solver.into())),
        ("status".into(), Json::Str(r.status.as_str().into())),
    ];
    if r.status == Status::Solved {
        if let Some(m) = r.makespan {
            fields.push(("makespan".into(), Json::UInt(m)));
        }
        if let Some(b) = r.budget_used {
            fields.push(("budget_used".into(), Json::UInt(b)));
        }
        if let Some(x) = r.lp_makespan {
            fields.push(("lp_makespan".into(), Json::Float(x)));
        }
        if let Some(x) = r.lp_budget {
            fields.push(("lp_budget".into(), Json::Float(x)));
        }
        if let Some(x) = r.makespan_factor {
            fields.push(("makespan_factor".into(), Json::Float(x)));
        }
        if let Some(x) = r.resource_factor {
            fields.push(("resource_factor".into(), Json::Float(x)));
        }
        fields.push(("work".into(), Json::UInt(r.work)));
        if let Some(sim) = &r.sim {
            fields.push(("sim_makespan".into(), Json::UInt(sim.simulated)));
        }
    } else {
        fields.push(("detail".into(), Json::Str(r.detail.clone())));
    }
    Json::Obj(fields).compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_engine::{run_batch, Registry};

    fn chain_line(id: &str, budget: u64) -> String {
        format!(
            r#"{{"id":"{id}","instance":{{"form":"node","nodes":[{{"label":"s","duration":{{"kind":"zero"}}}},{{"label":"x","duration":{{"kind":"step","tuples":[[0,10],[4,0]]}}}},{{"label":"t","duration":{{"kind":"zero"}}}}],"edges":[{{"src":0,"dst":1}},{{"src":1,"dst":2}}]}},"budget":{budget}}}"#
        )
    }

    #[test]
    fn corpus_parses_and_dedupes_instances() {
        let corpus = format!("{}\n\n{}\n", chain_line("a", 4), chain_line("b", 2));
        let cache = PrepCache::new();
        let reqs = build_requests(&corpus, &cache, None, &Registry::standard()).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].id, "a");
        assert!(matches!(
            reqs[0].objective,
            Objective::MinMakespan { budget: 4 }
        ));
        // same instance document → one cache entry, one hit
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().instance_hits, 1);
    }

    #[test]
    fn bad_lines_name_their_line_number() {
        let cache = PrepCache::new();
        let registry = Registry::standard();
        let err = build_requests("{\"instance\":{}}\n", &cache, None, &registry).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let corpus = format!("{}\nnot json\n", chain_line("a", 1));
        let err = build_requests(&corpus, &cache, None, &registry).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let no_obj = chain_line("a", 1).replace(",\"budget\":1", "");
        let err = build_requests(&no_obj, &cache, None, &registry).unwrap_err();
        assert!(err.contains("need `budget` or `target`"), "{err}");
        // a typo'd per-line solver fails the load, not the report stream
        let typo = chain_line("a", 1).replace("\"budget\":1", "\"budget\":1,\"solver\":\"exat\"");
        let err = build_requests(&typo, &cache, None, &registry).unwrap_err();
        assert!(err.contains("unknown solver \"exat\""), "{err}");
    }

    #[test]
    fn report_lines_are_stable_across_thread_counts() {
        let corpus = (0..6)
            .map(|i| chain_line(&format!("q{i}"), i))
            .collect::<Vec<_>>()
            .join("\n");
        let registry = Registry::standard();
        let render = |threads: usize| {
            let cache = PrepCache::new();
            let reqs = build_requests(&corpus, &cache, None, &registry).unwrap();
            run_batch(&registry, reqs, threads)
                .reports
                .iter()
                .map(report_line)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let one = render(1);
        assert!(one.contains("\"status\":\"solved\""));
        assert!(!one.contains("wall"), "timing must stay off the wire");
        for threads in [2, 4, 8] {
            assert_eq!(one, render(threads), "threads={threads}");
        }
    }

    #[test]
    fn named_default_solver_applies_to_bare_lines() {
        let cache = PrepCache::new();
        let reqs =
            build_requests(&chain_line("a", 3), &cache, Some("bicriteria"), &Registry::standard())
                .unwrap();
        assert_eq!(
            reqs[0].solver,
            SolverSelection::Named("bicriteria".to_string())
        );
    }
}
