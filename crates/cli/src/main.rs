//! `rtt` — solve resource-time tradeoff instances from the shell.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtt_cli::InstanceSpec;
use rtt_core::regimes::compare_regimes;
use rtt_core::{routing_plan, validate, ArcInstance};
use rtt_dag::gen;
use rtt_duration::Duration;
use std::process::ExitCode;

const USAGE: &str = "\
rtt — the discrete resource-time tradeoff with resource reuse over paths

USAGE:
  rtt gen --kind <race|layered|sp|chain> [--nodes N] [--seed S] [--family <recbinary|kway>]
  rtt info <instance.json>
  rtt solve <instance.json> --budget B [--solver <exact|bicriteria|kway|recbinary|improved|sp>]
            [--alpha A] [--plan]
  rtt min-resource <instance.json> --target T [--alpha A]
  rtt regimes <instance.json> --budget B
  rtt dot <instance.json>

Instances are JSON (see rtt-cli docs). `gen` writes one to stdout.";

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut switches = std::collections::HashSet::new();
    let mut it = raw.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            // a flag with a value unless followed by another flag / end
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_string(), it.next().unwrap().clone());
                }
                _ => {
                    switches.insert(name.to_string());
                }
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Args {
        positional,
        flags,
        switches,
    })
}

impl Args {
    fn flag<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        self.flag(name)?
            .ok_or_else(|| format!("missing required flag --{name}"))
    }
}

fn load(path: &str) -> Result<ArcInstance, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let spec =
        InstanceSpec::from_json_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    spec.build().map_err(|e| format!("building {path}: {e}"))
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let kind: String = args.require("kind")?;
    let nodes: usize = args.flag("nodes")?.unwrap_or(8);
    let seed: u64 = args.flag("seed")?.unwrap_or(42);
    let family: String = args.flag("family")?.unwrap_or_else(|| "recbinary".into());
    let fam: fn(u64) -> Duration = match family.as_str() {
        "recbinary" => Duration::recursive_binary,
        "kway" => Duration::kway,
        other => return Err(format!("unknown family {other}")),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = match kind.as_str() {
        "race" => gen::random_race_dag(&mut rng, nodes, nodes),
        "layered" => gen::layered(&mut rng, 4, nodes.div_ceil(4).max(1), 0.4),
        "sp" => gen::random_sp(&mut rng, nodes.max(1)).tt,
        "chain" => gen::chain(nodes.max(1)),
        other => return Err(format!("unknown kind {other}")),
    };
    // duplicate edges to create real contention, then attach durations
    let inst = rtt_core::Instance::race_dag(&tt.dag, fam)
        .map_err(|e| format!("generated graph rejected: {e}"))?;
    let (arc, _) = rtt_core::to_arc_form(&inst);
    let spec = InstanceSpec::from_arc(&arc);
    println!("{}", spec.to_json_string());
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("missing instance path")?
        .clone();
    let arc = load(&path)?;
    let d = arc.dag();
    println!("nodes:            {}", d.node_count());
    println!("arcs:             {}", d.edge_count());
    println!("improvable jobs:  {}", arc.improvable_edges().len());
    println!("base makespan:    {}", arc.base_makespan());
    println!("ideal makespan:   {}", arc.ideal_makespan());
    println!("saturation budget:{}", arc.saturation_budget());
    match arc.dominant_kind() {
        Some(k) => println!("duration family:  {k:?}"),
        None => println!("duration family:  mixed"),
    }
    Ok(())
}

fn cmd_solve(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("missing instance path")?
        .clone();
    let arc = load(&path)?;
    let budget: u64 = args.require("budget")?;
    let alpha: f64 = args.flag("alpha")?.unwrap_or(0.5);
    let solver: String = args.flag("solver")?.unwrap_or_else(|| "bicriteria".into());
    let sol = match solver.as_str() {
        "exact" => rtt_core::exact::solve_exact(&arc, budget).solution,
        "bicriteria" => {
            let r = rtt_core::solve_bicriteria(&arc, budget, alpha)
                .map_err(|e| e.to_string())?;
            println!("LP lower bound:   {:.3}", r.lp_makespan);
            r.solution
        }
        "kway" => {
            let r = rtt_core::solve_kway_5approx(&arc, budget).map_err(|e| e.to_string())?;
            println!("LP lower bound:   {:.3}", r.lp_makespan);
            r.solution
        }
        "recbinary" => {
            let r =
                rtt_core::solve_recbinary_4approx(&arc, budget).map_err(|e| e.to_string())?;
            println!("LP lower bound:   {:.3}", r.lp_makespan);
            r.solution
        }
        "improved" => {
            let r =
                rtt_core::solve_recbinary_improved(&arc, budget).map_err(|e| e.to_string())?;
            println!("LP lower bound:   {:.3}", r.lp_makespan);
            r.solution
        }
        "sp" => {
            let (_, sol) = rtt_core::sp_dp::solve_sp_exact(&arc, budget)
                .ok_or("instance is not two-terminal series-parallel")?;
            sol
        }
        other => return Err(format!("unknown solver {other}")),
    };
    validate(&arc, &sol).map_err(|e| format!("internal: produced invalid solution: {e}"))?;
    println!("makespan:         {}", sol.makespan);
    println!("budget used:      {}", sol.budget_used);
    if args.switches.contains("plan") {
        let plan = routing_plan(&arc, &sol).map_err(|e| e.to_string())?;
        println!("{}", plan.render(&arc));
    }
    Ok(())
}

fn cmd_min_resource(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("missing instance path")?
        .clone();
    let arc = load(&path)?;
    let target: u64 = args.require("target")?;
    let alpha: f64 = args.flag("alpha")?.unwrap_or(0.5);
    match rtt_core::min_resource(&arc, target, alpha) {
        Ok(r) => {
            validate(&arc, &r.solution).map_err(|e| format!("internal: {e}"))?;
            println!("LP lower bound:   {:.3} units", r.lp_budget);
            println!("budget needed:    {} (makespan ≤ {})", r.solution.budget_used, target);
            println!("achieved makespan:{} (guarantee: ≤ target/α = {:.1})",
                r.solution.makespan, target as f64 / alpha);
            Ok(())
        }
        Err(e) => Err(format!("target unreachable: {e}")),
    }
}

fn cmd_regimes(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("missing instance path")?
        .clone();
    let arc = load(&path)?;
    let budget: u64 = args.require("budget")?;
    let c = compare_regimes(&arc, budget);
    println!("budget {budget}:");
    println!("  no reuse (Q1.1, exact):        {}", c.noreuse);
    println!("  reuse over paths (Q1.3, exact):{}", c.path_reuse);
    println!("  global pool (Q1.2, greedy):    {}", c.global_best());
    Ok(())
}

fn cmd_dot(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("missing instance path")?
        .clone();
    let arc = load(&path)?;
    let dot = rtt_dag::dot::to_dot(
        arc.dag(),
        "instance",
        |_, _| String::new(),
        |_, a| {
            if a.label.is_empty() {
                a.duration.to_string()
            } else {
                format!("{}: {}", a.label, a.duration)
            }
        },
    );
    println!("{dot}");
    Ok(())
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        return Err(USAGE.to_string());
    }
    let args = parse_args(&raw)?;
    match args.positional.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args),
        Some("info") => cmd_info(&args),
        Some("solve") => cmd_solve(&args),
        Some("min-resource") => cmd_min_resource(&args),
        Some("regimes") => cmd_regimes(&args),
        Some("dot") => cmd_dot(&args),
        Some(other) => Err(format!("unknown command {other}\n\n{USAGE}")),
        None => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
