//! `rtt` — solve resource-time tradeoff instances from the shell.
//!
//! Solver dispatch is registry-driven: `solve`, `min-resource`, and
//! `batch` all resolve `--solver` through [`rtt_engine::Registry`], so
//! the CLI has no per-algorithm match of its own and new solvers appear
//! here the moment they are registered.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtt_cli::args::{parse_args, Args};
use rtt_cli::InstanceSpec;
use rtt_core::regimes::compare_regimes;
use rtt_core::{routing_plan, validate, ArcInstance};
use rtt_dag::gen;
use rtt_duration::Duration;
use rtt_engine::{
    execute_one, run_batch_cached, Objective, PrepCache, PreparedInstance, Registry,
    SolveReport, SolveRequest, SolverSelection, Status,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "\
rtt — the discrete resource-time tradeoff with resource reuse over paths

USAGE:
  rtt gen --kind <race|layered|sp|chain> [--nodes N] [--seed S] [--family <recbinary|kway>]
  rtt gen --kind race-mm [--n N] [--family F]
  rtt gen --kind race-forkjoin [--seed S] [--stages K] [--width W] [--contention C] [--family F]
  rtt info <instance.json>
  rtt solve <instance.json> --budget B [--solver <name>] [--alpha A] [--plan]
  rtt min-resource <instance.json> --target T [--solver <name>] [--alpha A]
  rtt curve <instance.json> --budgets a:b:step|a,b,c [--alpha A] [--out PATH]
  rtt batch <corpus.ndjson> [--threads N] [--solve-threads N] [--solver all|<name>]
            [--out PATH] [--lint-first]
            [--max-pivots P] [--max-sim-events E] [--on-exhaustion hard-reject|degrade|soft-warn]
            [--reuse-cache] [--cache-capacity N] [--cache-save PATH] [--cache-load PATH]
  rtt lint <corpus.ndjson|instance.json> [--format human|ndjson]
  rtt analyze race --kind race-mm [--n N] [--engine static|dynamic|both]
  rtt analyze race --kind race-forkjoin [--seed S] [--stages K] [--width W] [--contention C]
                   [--engine static|dynamic|both]
  rtt solvers
  rtt regimes <instance.json> --budget B
  rtt dot <instance.json>

`rtt solvers` lists the registry (plus aliases `improved`, `sp`) with
each solver's certified output: the solution form its reports carry
(routed / noreuse / schedule) and the simulation certificate every
solved report ships (`sim_makespan`).
Instances are JSON (see rtt-cli docs); batch corpora are NDJSON, one
request per line (see the rtt_cli::batch docs). `gen` writes an
instance to stdout.

`--reuse-cache` turns on the cross-request solution cache: duplicate
and relabeled requests (single solves and sweep lines alike) replay
the first request's certified reports instead of re-solving. Caches
change cost, never bytes — batch stdout is byte-identical with the
cache on or off, at any thread count and any `--cache-capacity` (the
LRU bound, default 1024, shared with the always-on preprocessing
cache). Cache statistics go to stderr. `--cache-save PATH` spills the
solution tier to a `rtt-cache-v1` file after the batch; `--cache-load
PATH` pre-populates it before the batch (both imply --reuse-cache).
Loaded entries are untrusted until served: full key comparison plus
fresh analytic + simulation re-certification, and a corrupt or
version-mismatched file fails the command without loading anything
(see the rtt_cli::batch docs).

Batch `--threads` (inter-request workers) defaults to the host's
available parallelism clamped to [1, 8]; `--solve-threads` (also on
solve/min-resource/curve, default 1, or the RTT_SOLVE_THREADS
environment variable) turns on the deterministic *intra*-solve
parallel paths — chunked LP pricing, subtree-parallel SP-DP, sharded
certification replay. Both are cost knobs only: output is
byte-identical at every setting, and worker counts print to stderr,
never to the wire.

The batch `--max-*` / `--on-exhaustion` flags apply a resource budget
to every corpus line that declares no `max_*` field of its own
(per-line budgets win; see the rtt_cli::batch docs for the per-line
fields, which also include max_merge_steps and max_queue_depth).
Setting RTT_FAULT_SOLVERS=1 additionally registers the fault-injection
fixtures (fixture-panic, fixture-exhaust) for exercising the
executor's panic isolation and budget enforcement; they only run when
a line names them.

The race-* kinds derive instances from actual racy programs: `race-mm`
is the Figure 3 Parallel-MM with the k-loop parallelized (n updates
race on every output cell), `race-forkjoin` a seeded random fork-join
program. Both flow through solve/batch/curve unchanged.

`rtt lint` is the no-solve static checker: it reports every
diagnosable line of a corpus (or a standalone instance file) as
compiler-style RTT0xx diagnostics — errors are exactly the lines
`rtt batch` would reject, warnings are admitted-but-vacuous fields —
and exits nonzero iff an error was found (see the rtt_cli::batch docs
under \"Diagnostics\" for the code table and the NDJSON shape).
`rtt batch --lint-first` runs the same checker as an admission
pre-pass: diagnostics go to stderr and an error aborts before any
request is enqueued, leaving stdout untouched.

`rtt analyze race` runs the static race analyzer on a generated racy
program: per-strand access footprints intersected under the
English-Hebrew may-happen-in-parallel relation, reporting
interval-compressed racing summaries without materializing
per-location access lists. `--engine dynamic` runs the retained
dynamic detector instead; `--engine both` runs the two and asserts
their witness sets identical before printing.";

fn load(path: &str) -> Result<ArcInstance, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let spec =
        InstanceSpec::from_json_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    spec.build().map_err(|e| format!("building {path}: {e}"))
}

fn instance_path(args: &Args) -> Result<String, String> {
    Ok(args
        .positional
        .get(1)
        .ok_or("missing instance path")?
        .clone())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let kind: String = args.require("kind")?;
    let nodes: usize = args.flag("nodes")?.unwrap_or(8);
    let seed: u64 = args.flag("seed")?.unwrap_or(42);
    let family: rtt_core::ReducerFamily = args
        .flag::<String>("family")?
        .unwrap_or_else(|| "recbinary".into())
        .parse()?;
    // a flag another gen kind uses but this kind ignores must fail
    // loudly, not silently produce a default-sized instance
    let reject = |flag: &str, hint: &str| -> Result<(), String> {
        if args.flags.contains_key(flag) || args.switch(flag) {
            Err(format!("--{flag} does not apply to --kind {kind}; {hint}"))
        } else {
            Ok(())
        }
    };
    // the race-* kinds go program → race DAG → instance (the paper's
    // §1 pipeline); the remaining kinds synthesize bare DAGs
    match kind.as_str() {
        "race-mm" => {
            reject("nodes", "the size is --n (the matrix dimension)")?;
            reject("seed", "the Figure 3 program is deterministic")?;
            let n: u64 = args.flag("n")?.unwrap_or(4);
            let spec = rtt_cli::race_mm_spec(n, family).map_err(|e| e.to_string())?;
            println!("{}", spec.to_json_string());
            return Ok(());
        }
        "race-forkjoin" => {
            reject("nodes", "the size is --stages and --width")?;
            let stages: usize = args.flag("stages")?.unwrap_or(3);
            let width: usize = args.flag("width")?.unwrap_or(4);
            let contention: usize = args.flag("contention")?.unwrap_or(8);
            let spec = rtt_cli::race_forkjoin_spec(seed, stages, width, contention, family)
                .map_err(|e| e.to_string())?;
            println!("{}", spec.to_json_string());
            return Ok(());
        }
        _ => {}
    }
    let fam: fn(u64) -> Duration = match family {
        rtt_core::ReducerFamily::RecursiveBinary => Duration::recursive_binary,
        rtt_core::ReducerFamily::KWay => Duration::kway,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = match kind.as_str() {
        "race" => gen::random_race_dag(&mut rng, nodes, nodes),
        "layered" => gen::layered(&mut rng, 4, nodes.div_ceil(4).max(1), 0.4),
        "sp" => gen::random_sp(&mut rng, nodes.max(1)).tt,
        "chain" => gen::chain(nodes.max(1)),
        other => return Err(format!("unknown kind {other}")),
    };
    // duplicate edges to create real contention, then attach durations
    let inst = rtt_core::Instance::race_dag(&tt.dag, fam)
        .map_err(|e| format!("generated graph rejected: {e}"))?;
    let (arc, _) = rtt_core::to_arc_form(&inst);
    let spec = InstanceSpec::from_arc(&arc);
    println!("{}", spec.to_json_string());
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let arc = load(&instance_path(args)?)?;
    let d = arc.dag();
    println!("nodes:            {}", d.node_count());
    println!("arcs:             {}", d.edge_count());
    println!("improvable jobs:  {}", arc.improvable_edges().len());
    println!("base makespan:    {}", arc.base_makespan());
    println!("ideal makespan:   {}", arc.ideal_makespan());
    println!("saturation budget:{}", arc.saturation_budget());
    match arc.dominant_kind() {
        Some(k) => println!("duration family:  {k:?}"),
        None => println!("duration family:  mixed"),
    }
    Ok(())
}

/// Runs one registry solver on one instance and prints the report — the
/// single dispatch path behind `solve` and `min-resource`.
fn solve_via_registry(
    args: &Args,
    arc: ArcInstance,
    objective: Objective,
    solver_name: &str,
) -> Result<SolveReport, String> {
    let registry = Registry::standard();
    if registry.resolve(solver_name).is_none() {
        return Err(format!(
            "unknown solver {solver_name}; available: {} (aliases: improved, sp)",
            registry.names().join(", ")
        ));
    }
    let alpha: f64 = args.flag("alpha")?.unwrap_or(0.5);
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(format!("--alpha must be in (0, 1), got {alpha}"));
    }
    let req = SolveRequest {
        id: "cli".into(),
        prepared: Arc::new(PreparedInstance::new(arc)),
        objective,
        alpha,
        solver: SolverSelection::Named(solver_name.to_string()),
        deadline: None,
        seed: args.flag("seed")?.unwrap_or(0),
        budget: None,
        intra_threads: args.flag("solve-threads")?,
    };
    let mut reports = execute_one(&registry, &req, Instant::now());
    let report = reports.pop().expect("named selection yields one report");
    match report.status {
        Status::Solved => Ok(report),
        Status::Unsupported => Err(format!("solver {solver_name}: {}", report.detail)),
        // only a genuinely unreachable objective gets the
        // "target unreachable" framing — usage errors stay usage errors
        Status::Infeasible => Err(format!("target unreachable: {}", report.detail)),
        Status::DeadlineExpired => Err("deadline expired".into()),
        // the detail already reads "budget exhausted: <dim> …"
        Status::BudgetExhausted => Err(report.detail),
        Status::Failed => Err(format!("solver {solver_name} failed: {}", report.detail)),
    }
}

fn cmd_solve(args: &Args) -> Result<(), String> {
    let arc = load(&instance_path(args)?)?;
    let budget: u64 = args.require("budget")?;
    let solver: String = args.flag("solver")?.unwrap_or_else(|| "bicriteria".into());
    let report = solve_via_registry(args, arc.clone(), Objective::MinMakespan { budget }, &solver)?;
    if let Some(lp) = report.lp_makespan {
        println!("LP lower bound:   {lp:.3}");
    }
    let makespan = report.makespan.expect("solved report has a makespan");
    println!("makespan:         {makespan}");
    println!("budget used:      {}", report.budget_used.expect("solved"));
    if let Some(sim) = &report.sim {
        println!(
            "simulated:        {} ≤ {} (Observation 1.1 certificate, {} updates)",
            sim.simulated, sim.bound, sim.expanded_updates
        );
    }
    if args.switch("plan") {
        match &report.solution {
            Some(sol) => {
                validate(&arc, sol).map_err(|e| format!("internal: invalid solution: {e}"))?;
                let plan = routing_plan(&arc, sol).map_err(|e| e.to_string())?;
                println!("{}", plan.render(&arc));
            }
            None => println!("(solver {solver} reports no routed flow to plan)"),
        }
    }
    Ok(())
}

fn cmd_min_resource(args: &Args) -> Result<(), String> {
    let arc = load(&instance_path(args)?)?;
    let target: u64 = args.require("target")?;
    let solver: String = args.flag("solver")?.unwrap_or_else(|| "bicriteria".into());
    let report = solve_via_registry(args, arc, Objective::MinResource { target }, &solver)?;
    if let Some(lp) = report.lp_budget {
        println!("LP lower bound:   {lp:.3} units");
    }
    println!(
        "budget needed:    {} (makespan ≤ {})",
        report.budget_used.expect("solved"),
        target
    );
    // the makespan guarantee is the solver's certificate: exact solvers
    // meet the target itself, bi-criteria ones overshoot by their factor
    let guarantee = match report.makespan_factor {
        Some(f) if f > 1.0 => format!(" (guarantee: ≤ {:.1} = {:.4}·target)", f * target as f64, f),
        Some(_) => " (meets the target exactly)".to_string(),
        None => String::new(),
    };
    println!(
        "achieved makespan:{}{guarantee}",
        report.makespan.expect("solved")
    );
    Ok(())
}

/// `rtt curve`: the resource-time tradeoff curve over a budget grid,
/// solved as one warm-started LP chain and emitted as NDJSON (one point
/// per line, grid order — see `rtt_cli::batch::curve_line` for the wire
/// format). Timing stays on stderr, like `rtt batch`.
fn cmd_curve(args: &Args) -> Result<(), String> {
    let arc = load(&instance_path(args)?)?;
    let budgets = rtt_cli::args::parse_budgets(&args.require::<String>("budgets")?)?;
    if budgets.is_empty() {
        return Err("empty budget grid".into());
    }
    let alpha: f64 = args.flag("alpha")?.unwrap_or(0.5);
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(format!("--alpha must be in (0, 1), got {alpha}"));
    }
    let registry = Registry::standard();
    let mut req = SolveRequest::sweep("curve", Arc::new(PreparedInstance::new(arc)), budgets.clone());
    req.alpha = alpha;
    req.intra_threads = args.flag("solve-threads")?;
    let started = Instant::now();
    let reports = execute_one(&registry, &req, Instant::now());
    let wall = started.elapsed();
    // a whole-curve failure yields one non-solved report; check status,
    // not count, so a one-point grid fails the same way as a long one
    if let Some(bad) = reports.iter().find(|r| r.status != Status::Solved) {
        return Err(format!("curve failed: {}", bad.detail));
    }
    debug_assert_eq!(reports.len(), budgets.len(), "one solved report per budget");
    let mut rendered = String::new();
    for (b, report) in budgets.iter().zip(&reports) {
        rendered.push_str(&rtt_cli::batch::curve_line(*b, report));
        rendered.push('\n');
    }
    match args.flag::<String>("out")? {
        Some(dest) => {
            std::fs::write(&dest, &rendered).map_err(|e| format!("writing {dest}: {e}"))?
        }
        None => print!("{rendered}"),
    }
    let pivots: u64 = reports.iter().map(|r| r.work).sum();
    eprintln!(
        "curve: {} points in {:.1} ms ({} simplex pivots; {} on the cold first point)",
        budgets.len(),
        wall.as_secs_f64() * 1e3,
        pivots,
        reports.first().map_or(0, |r| r.work),
    );
    Ok(())
}

fn cmd_batch(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("missing corpus path (NDJSON, one request per line)")?;
    let corpus =
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    // default batch width: the host's available parallelism, clamped to
    // [1, 8] — enough to saturate small boxes without oversubscribing
    // big ones by default; `--threads N` overrides. Worker counts are
    // cost knobs: they print to stderr only and never reach the wire.
    let threads: usize = args
        .flag("threads")?
        .unwrap_or_else(|| rtt_par::available().clamp(1, 8));
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    // intra-solve threads for the deterministic parallel paths inside
    // each request (rtt_par); like --threads, cost-only and off-wire
    let solve_threads: Option<usize> = args.flag("solve-threads")?;
    let solver: String = args.flag("solver")?.unwrap_or_else(|| "all".into());
    let mut registry = Registry::standard();
    // fault-injection fixtures are opt-in and name-addressed only: they
    // decline supports(), so even when registered they never join the
    // `all` fan-out — a corpus line must name them
    if std::env::var("RTT_FAULT_SOLVERS").as_deref() == Ok("1") {
        registry.register(Box::new(rtt_engine::AlwaysPanicSolver));
        registry.register(Box::new(rtt_engine::AlwaysExhaustSolver));
    }
    let registry = registry;
    // --lint-first: the rtt lint pre-pass as an admission gate —
    // diagnostics to stderr (stdout stays the byte-stable wire), any
    // error aborts before a single request is enqueued
    if args.switch("lint-first") {
        let diags = rtt_cli::lint::lint_corpus(&corpus, &registry);
        for d in &diags {
            eprintln!("{}", d.human(path));
        }
        let errors = diags
            .iter()
            .filter(|d| d.severity == rtt_analyze::lint::Severity::Error)
            .count();
        if errors > 0 {
            return Err(format!(
                "{path}: --lint-first found {errors} error(s); no requests admitted"
            ));
        }
    }
    // batch-wide budget defaults; a per-line budget overrides them
    let default_budget = {
        let limits = rtt_engine::BudgetLimits {
            lp_pivots: args.flag("max-pivots")?,
            sim_events: args.flag("max-sim-events")?,
            ..Default::default()
        };
        let policy = match args.flag::<String>("on-exhaustion")? {
            Some(name) => {
                if limits.is_empty() {
                    return Err(
                        "--on-exhaustion requires --max-pivots or --max-sim-events".into()
                    );
                }
                Some(rtt_engine::ExhaustionPolicy::parse(&name)?)
            }
            None => None,
        };
        if limits.is_empty() {
            None
        } else {
            Some(rtt_engine::BudgetSpec {
                limits,
                policies: rtt_engine::BudgetPolicies::uniform(policy.unwrap_or_default()),
            })
        }
    };
    let default_solver = match solver.as_str() {
        "all" => None,
        name => {
            if registry.resolve(name).is_none() {
                return Err(format!(
                    "unknown solver {name}; available: all, {}",
                    registry.names().join(", ")
                ));
            }
            Some(name.to_string())
        }
    };
    let capacity = rtt_cli::args::parse_cache_capacity(args)?;
    let cache_save: Option<String> = args.flag("cache-save")?;
    let cache_load: Option<String> = args.flag("cache-load")?;
    // the preprocessing cache is always bounded; the cross-request
    // solution cache is opt-in — persistence flags imply it. Neither
    // can change stdout: caches trade cost, never bytes (see the
    // rtt_cli::batch docs)
    let cache = PrepCache::with_capacity(capacity);
    let reuse = (args.switch("reuse-cache") || cache_save.is_some() || cache_load.is_some())
        .then(|| rtt_engine::ReuseCache::new(capacity));
    if let (Some(path), Some(reuse)) = (&cache_load, &reuse) {
        // all-or-nothing: a bad file fails the whole command loudly
        let loaded = rtt_engine::persist::load(reuse, std::path::Path::new(path), &registry)
            .map_err(|e| format!("--cache-load {path}: {e}"))?;
        eprintln!("cache loaded: {loaded} entries from {path}");
    }
    let mut requests =
        rtt_cli::batch::build_requests(&corpus, &cache, default_solver.as_deref(), &registry)?;
    if requests.is_empty() {
        return Err(format!("{path}: no requests (empty corpus)"));
    }
    if let Some(spec) = default_budget {
        for req in &mut requests {
            req.budget = req.budget.or(Some(spec));
        }
    }
    if let Some(n) = solve_threads {
        for req in &mut requests {
            req.intra_threads = Some(n);
        }
    }
    let out = run_batch_cached(&registry, requests, threads, reuse.as_ref());
    let mut rendered = String::new();
    for report in &out.reports {
        rendered.push_str(&rtt_cli::batch::report_line(report));
        rendered.push('\n');
    }
    match args.flag::<String>("out")? {
        Some(dest) => std::fs::write(&dest, &rendered)
            .map_err(|e| format!("writing {dest}: {e}"))?,
        None => print!("{rendered}"),
    }
    // timing and cache telemetry go to stderr: the stdout stream is the
    // byte-stable wire format
    let stats = cache.stats();
    eprintln!(
        "batch: {} requests -> {} reports ({} solved, {} expired, {} rejected, {} degraded, \
         {} warned, {} panicked) in {:.1} ms on {} thread(s); \
         {:.1} req/s; prep cache: {}/{} instance hits ({:.0}%), {}/{} artifact reuses ({:.0}%), \
         {} evicted",
        out.stats.requests,
        out.stats.reports,
        out.stats.solved,
        out.stats.expired,
        out.stats.rejected,
        out.stats.degraded,
        out.stats.warned,
        out.stats.panicked,
        out.wall.as_secs_f64() * 1e3,
        out.stats.threads,
        out.stats.requests as f64 / out.wall.as_secs_f64().max(1e-9),
        stats.instance_hits,
        stats.instance_hits + stats.instance_misses,
        stats.instance_hit_rate() * 100.0,
        stats.artifact_reuses,
        stats.artifact_reuses + stats.artifact_computes,
        stats.artifact_reuse_rate() * 100.0,
        stats.evicted,
    );
    if let Some(reuse) = &reuse {
        let r = reuse.stats();
        eprintln!(
            "reuse cache: {}/{} solution hits, {} pivots saved; \
             {}/{} warm-basis hits, {} delta solves; {} evictions",
            r.solution_hits,
            r.solution_hits + r.solution_misses,
            r.pivots_saved,
            r.warm_hits,
            r.warm_hits + r.warm_misses,
            r.delta_solves,
            r.evictions,
        );
    }
    if let (Some(path), Some(reuse)) = (&cache_save, &reuse) {
        let saved = rtt_engine::persist::save(reuse, std::path::Path::new(path))
            .map_err(|e| format!("--cache-save {path}: {e}"))?;
        eprintln!("cache spilled: {saved} entries -> {path}");
    }
    Ok(())
}

/// `rtt lint`: the no-solve static checker over a batch corpus
/// (`.ndjson`) or a standalone instance document (anything else).
/// Diagnostics go to stdout in deterministic `(line, code, message)`
/// order; the summary goes to stderr; the exit code is nonzero iff an
/// error-severity diagnostic was found.
fn cmd_lint(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("missing lint target (corpus.ndjson or instance.json)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let format: String = args.flag("format")?.unwrap_or_else(|| "human".into());
    if !matches!(format.as_str(), "human" | "ndjson") {
        return Err(format!("unknown --format {format}; available: human, ndjson"));
    }
    // same registry the batch admission uses, fixtures included, so the
    // unknown-solver check (RTT008) agrees with what batch would accept
    let mut registry = Registry::standard();
    if std::env::var("RTT_FAULT_SOLVERS").as_deref() == Ok("1") {
        registry.register(Box::new(rtt_engine::AlwaysPanicSolver));
        registry.register(Box::new(rtt_engine::AlwaysExhaustSolver));
    }
    let diags = if path.ends_with(".ndjson") {
        rtt_cli::lint::lint_corpus(&text, &registry)
    } else {
        rtt_cli::lint::lint_spec(&text)
    };
    let mut rendered = String::new();
    for d in &diags {
        match format.as_str() {
            "ndjson" => rendered.push_str(&d.ndjson()),
            _ => rendered.push_str(&d.human(path)),
        }
        rendered.push('\n');
    }
    print!("{rendered}");
    let errors = diags
        .iter()
        .filter(|d| d.severity == rtt_analyze::lint::Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    eprintln!("lint: {path}: {errors} error(s), {warnings} warning(s)");
    if errors > 0 {
        return Err(format!("{path}: lint found {errors} error(s)"));
    }
    Ok(())
}

/// `rtt analyze race`: the static race analyzer over a generated racy
/// program — footprint summaries intersected under the English-Hebrew
/// order, one NDJSON line per interval-compressed racing summary.
/// `--engine dynamic` runs the retained dynamic detector instead (one
/// line per deduplicated witness); `--engine both` runs the two,
/// asserts the witness sets identical, and prints the static
/// summaries. Timing goes to stderr.
fn cmd_analyze(args: &Args) -> Result<(), String> {
    match args.positional.get(1).map(String::as_str) {
        Some("race") => {}
        other => {
            return Err(format!(
                "unknown analyze pass {}; available: race",
                other.unwrap_or("(none)")
            ))
        }
    }
    let kind: String = args.require("kind")?;
    let prog = match kind.as_str() {
        "race-mm" => {
            let n: u64 = args.flag("n")?.unwrap_or(4);
            if n == 0 {
                return Err("--n must be ≥ 1".into());
            }
            rtt_race::mm::parallel_mm_racy(n).0
        }
        "race-forkjoin" => {
            let seed: u64 = args.flag("seed")?.unwrap_or(42);
            let stages: usize = args.flag("stages")?.unwrap_or(3);
            let width: usize = args.flag("width")?.unwrap_or(4);
            let contention: usize = args.flag("contention")?.unwrap_or(8);
            if stages == 0 || width == 0 || contention == 0 {
                return Err("--stages, --width, and --contention must be ≥ 1".into());
            }
            let mut rng = StdRng::seed_from_u64(seed);
            rtt_race::gen::random_fork_join(&mut rng, stages, width, contention)
        }
        other => {
            return Err(format!(
                "unknown kind {other}; available: race-mm, race-forkjoin"
            ))
        }
    };
    let engine: String = args.flag("engine")?.unwrap_or_else(|| "static".into());
    let print_static = |sums: &[rtt_analyze::race::RaceSummary]| {
        let mut rendered = String::new();
        for s in sums {
            rendered.push_str(&format!(
                "{{\"lo\":{},\"hi\":{},\"a\":{},\"b\":{},\"write_write\":{}}}\n",
                s.lo, s.hi, s.a, s.b, s.write_write
            ));
        }
        print!("{rendered}");
    };
    match engine.as_str() {
        "static" => {
            let started = Instant::now();
            let sums = rtt_analyze::race::analyze_races(&prog);
            let wall = started.elapsed();
            print_static(&sums);
            eprintln!(
                "analyze race (static): {} summaries covering {} witnesses in {:.2} ms",
                sums.len(),
                rtt_analyze::race::witness_count(&sums),
                wall.as_secs_f64() * 1e3
            );
        }
        "dynamic" => {
            let started = Instant::now();
            let races = rtt_race::detect_races(&prog);
            let wall = started.elapsed();
            let witnesses = rtt_analyze::race::dynamic_witness_set(&races);
            let mut rendered = String::new();
            for (loc, a, b, ww) in &witnesses {
                rendered.push_str(&format!(
                    "{{\"loc\":{loc},\"a\":{a},\"b\":{b},\"write_write\":{ww}}}\n"
                ));
            }
            print!("{rendered}");
            eprintln!(
                "analyze race (dynamic): {} witnesses in {:.2} ms",
                witnesses.len(),
                wall.as_secs_f64() * 1e3
            );
        }
        "both" => {
            let started = Instant::now();
            let sums = rtt_analyze::race::analyze_races(&prog);
            let static_wall = started.elapsed();
            let started = Instant::now();
            let races = rtt_race::detect_races(&prog);
            let dynamic_wall = started.elapsed();
            let static_w = rtt_analyze::race::witness_set(&sums);
            let dynamic_w = rtt_analyze::race::dynamic_witness_set(&races);
            if static_w != dynamic_w {
                return Err(format!(
                    "static/dynamic witness sets differ: {} static vs {} dynamic — this is a bug",
                    static_w.len(),
                    dynamic_w.len()
                ));
            }
            print_static(&sums);
            eprintln!(
                "analyze race (both): witness sets identical ({} witnesses); \
                 static {:.2} ms, dynamic {:.2} ms",
                static_w.len(),
                static_wall.as_secs_f64() * 1e3,
                dynamic_wall.as_secs_f64() * 1e3
            );
        }
        other => {
            return Err(format!(
                "unknown --engine {other}; available: static, dynamic, both"
            ))
        }
    }
    Ok(())
}

fn cmd_solvers() -> Result<(), String> {
    let registry = Registry::standard();
    // name + certified-output columns: which solution object each
    // solver's solved reports carry, and the certificate every one of
    // them ships with (the engine replays all three forms, so the
    // certificate column is uniformly sim_makespan — that uniformity is
    // the point, and a registry-wide test enforces it)
    for solver in registry.iter() {
        println!(
            "{:<20} {:<10} sim_makespan",
            solver.name(),
            solver.solution_form().as_str()
        );
    }
    Ok(())
}

fn cmd_regimes(args: &Args) -> Result<(), String> {
    let arc = load(&instance_path(args)?)?;
    let budget: u64 = args.require("budget")?;
    let c = compare_regimes(&arc, budget);
    println!("budget {budget}:");
    println!("  no reuse (Q1.1, exact):        {}", c.noreuse);
    println!("  reuse over paths (Q1.3, exact):{}", c.path_reuse);
    println!("  global pool (Q1.2, greedy):    {}", c.global_best());
    Ok(())
}

fn cmd_dot(args: &Args) -> Result<(), String> {
    let arc = load(&instance_path(args)?)?;
    let dot = rtt_dag::dot::to_dot(
        arc.dag(),
        "instance",
        |_, _| String::new(),
        |_, a| {
            if a.label.is_empty() {
                a.duration.to_string()
            } else {
                format!("{}: {}", a.label, a.duration)
            }
        },
    );
    println!("{dot}");
    Ok(())
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        return Err(USAGE.to_string());
    }
    let args = parse_args(&raw)?;
    match args.positional.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args),
        Some("info") => cmd_info(&args),
        Some("solve") => cmd_solve(&args),
        Some("min-resource") => cmd_min_resource(&args),
        Some("curve") => cmd_curve(&args),
        Some("batch") => cmd_batch(&args),
        Some("lint") => cmd_lint(&args),
        Some("analyze") => cmd_analyze(&args),
        Some("solvers") => cmd_solvers(),
        Some("regimes") => cmd_regimes(&args),
        Some("dot") => cmd_dot(&args),
        Some(other) => Err(format!("unknown command {other}\n\n{USAGE}")),
        None => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
