//! Argument parsing for the `rtt` binary.
//!
//! The grammar is deliberately tiny: positionals, `--name value` flags,
//! and `--name` switches. The rules, spelled out because they used to
//! be implicit:
//!
//! * a `--name` followed by a token that does not start with `--` is a
//!   **flag** and consumes that token as its value (so `--budget -5`
//!   parses, and the *value parser* rejects the negative number with a
//!   clear message);
//! * a `--name` at the end of argv, or directly followed by another
//!   `--…` token, is a **switch**;
//! * a repeated flag keeps its **last** value; asking a switch for a
//!   value (or a flag for switch-ness) is reported as an error rather
//!   than silently mis-parsed.

use std::collections::{BTreeMap, BTreeSet};

/// Parsed command-line arguments. Ordered maps (not hash maps) so any
/// error or debug rendering that walks them is deterministic — the
/// PR-9 determinism self-lint enforces this for every wire-path
/// module, and argument errors print to a user-visible stream.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Non-flag tokens, in order (the first is the subcommand).
    pub positional: Vec<String>,
    /// `--name value` pairs; a repeated flag keeps the last value.
    pub flags: BTreeMap<String, String>,
    /// Bare `--name` switches.
    pub switches: BTreeSet<String>,
}

/// Splits raw argv tokens into positionals, flags, and switches.
pub fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut i = 0;
    while i < raw.len() {
        if let Some(name) = raw[i].strip_prefix("--") {
            if name.is_empty() {
                return Err("empty flag name `--`".into());
            }
            match raw.get(i + 1) {
                Some(value) if !value.starts_with("--") => {
                    args.flags.insert(name.to_string(), value.clone());
                    // a later `--name value` overrides; a switch spelling
                    // of the same name never downgrades the flag
                    args.switches.remove(name);
                    i += 2;
                }
                _ => {
                    if !args.flags.contains_key(name) {
                        args.switches.insert(name.to_string());
                    }
                    i += 1;
                }
            }
        } else {
            args.positional.push(raw[i].clone());
            i += 1;
        }
    }
    Ok(args)
}

impl Args {
    /// Parses the optional flag `--name` into `T`. Errors if the value
    /// does not parse, or if `--name` was given *without* a value.
    pub fn flag<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        if self.switches.contains(name) && !self.flags.contains_key(name) {
            return Err(format!("flag --{name} needs a value"));
        }
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }

    /// Like [`Args::flag`], but the flag is mandatory.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        self.flag(name)?
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Whether the bare switch `--name` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(name)
    }
}

/// Parses a budget grid: either an inclusive range `a:b:step`
/// (`0:16:2` → 0, 2, …, 16) or a comma list `a,b,c`. The grid is
/// reported in the order given; ranges require `step ≥ 1` and `a ≤ b`.
///
/// A budget of **0 is deliberately accepted**: it is the well-defined
/// zero-resource point of the tradeoff curve (LP 6–10 with a zero
/// budget row routes no flow; the makespan is the base makespan, the
/// budget used is 0). Curve grids conventionally start there — the
/// committed curve golden uses `0:15:1` — so rejecting it at parse
/// would cut the curve's anchor point off. The degenerate-LP concern is
/// pinned by regression tests in `rtt_engine::curve` and here.
pub fn parse_budgets(spec: &str) -> Result<Vec<u64>, String> {
    if spec.contains(':') {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("budget range must be a:b:step, got {spec:?}"));
        }
        let parse = |s: &str, what: &str| -> Result<u64, String> {
            s.parse()
                .map_err(|_| format!("invalid {what} in budget range {spec:?}: {s:?}"))
        };
        let a = parse(parts[0], "start")?;
        let b = parse(parts[1], "end")?;
        let step = parse(parts[2], "step")?;
        if step == 0 {
            return Err("budget range step must be ≥ 1".into());
        }
        if a > b {
            return Err(format!("budget range start {a} exceeds end {b}"));
        }
        Ok((a..=b).step_by(step as usize).collect())
    } else {
        spec.split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("invalid budget in list {spec:?}: {s:?}"))
            })
            .collect()
    }
}

/// Parses the `--cache-capacity` flag (default 1024): the shared LRU
/// bound of the preprocessing cache and the opt-in reuse cache.
///
/// Zero, negative, and garbage values are rejected **here**, at arg
/// parse, with a pointed message — they used to flow unvalidated into
/// the cache constructors, where `ReuseCache` silently clamped 0 to 1
/// (a capacity the user never asked for).
pub fn parse_cache_capacity(args: &Args) -> Result<usize, String> {
    if args.switch("cache-capacity") && !args.flags.contains_key("cache-capacity") {
        return Err("flag --cache-capacity needs a value".into());
    }
    match args.flags.get("cache-capacity") {
        None => Ok(1024),
        Some(raw) => match raw.parse::<usize>() {
            Ok(0) => Err("--cache-capacity must be at least 1, got 0".into()),
            Ok(n) => Ok(n),
            Err(_) => Err(format!(
                "invalid value for --cache-capacity: {raw} (expected a positive integer)"
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        parse_args(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn positionals_flags_and_switches_separate() {
        let a = parse(&["solve", "x.json", "--budget", "5", "--plan"]);
        assert_eq!(a.positional, vec!["solve", "x.json"]);
        assert_eq!(a.flag::<u64>("budget").unwrap(), Some(5));
        assert!(a.switch("plan"));
    }

    #[test]
    fn switch_before_value_flag() {
        // `--plan --budget 5`: plan must not swallow `--budget`
        let a = parse(&["--plan", "--budget", "5"]);
        assert!(a.switch("plan"));
        assert_eq!(a.flag::<u64>("budget").unwrap(), Some(5));
    }

    #[test]
    fn trailing_value_flag_is_a_switch_and_errors_on_read() {
        let a = parse(&["solve", "--solver"]);
        assert!(a.switch("solver"));
        // reading it as a flag reports the missing value instead of
        // silently falling back to a default
        assert_eq!(
            a.flag::<String>("solver").unwrap_err(),
            "flag --solver needs a value"
        );
        assert_eq!(
            a.require::<String>("solver").unwrap_err(),
            "flag --solver needs a value"
        );
    }

    #[test]
    fn repeated_flags_keep_the_last_value() {
        let a = parse(&["--budget", "3", "--budget", "9"]);
        assert_eq!(a.flag::<u64>("budget").unwrap(), Some(9));
        // flag then switch spelling: the value wins deterministically
        let a = parse(&["--budget", "3", "--budget"]);
        assert_eq!(a.flag::<u64>("budget").unwrap(), Some(3));
        // switch then flag spelling: the value wins too
        let a = parse(&["--budget", "--budget", "3"]);
        assert_eq!(a.flag::<u64>("budget").unwrap(), Some(3));
        assert!(!a.switch("budget"));
    }

    #[test]
    fn negative_values_are_consumed_then_rejected_by_type() {
        // `-5` does not start with `--`, so it is the flag's value; the
        // u64 parse then fails with a pointed message
        let a = parse(&["--budget", "-5"]);
        assert_eq!(
            a.flag::<u64>("budget").unwrap_err(),
            "invalid value for --budget: -5"
        );
        // a type that accepts negatives parses fine
        assert_eq!(a.flag::<i64>("budget").unwrap(), Some(-5));
        let a = parse(&["--alpha", "-0.25"]);
        assert_eq!(a.flag::<f64>("alpha").unwrap(), Some(-0.25));
    }

    #[test]
    fn missing_and_empty_names() {
        let a = parse(&["solve"]);
        assert_eq!(
            a.require::<u64>("budget").unwrap_err(),
            "missing required flag --budget"
        );
        assert!(parse_args(&["--".to_string()]).is_err());
    }

    #[test]
    fn budget_grids_parse() {
        assert_eq!(parse_budgets("0:16:4").unwrap(), vec![0, 4, 8, 12, 16]);
        assert_eq!(parse_budgets("3:5:1").unwrap(), vec![3, 4, 5]);
        assert_eq!(parse_budgets("7:7:2").unwrap(), vec![7]);
        assert_eq!(parse_budgets("1,8,2").unwrap(), vec![1, 8, 2]);
        assert_eq!(parse_budgets("9").unwrap(), vec![9]);
        assert!(parse_budgets("4:2:1").is_err(), "start > end");
        assert!(parse_budgets("0:4:0").is_err(), "zero step");
        assert!(parse_budgets("0:4").is_err(), "two-part range");
        assert!(parse_budgets("a,b").is_err());
    }

    #[test]
    fn cache_capacity_rejects_zero_negative_and_garbage() {
        // satellite 1 (PR 8): bad capacities die at arg parse with a
        // message naming the flag, never inside a cache constructor
        assert_eq!(parse_cache_capacity(&parse(&["batch"])).unwrap(), 1024);
        assert_eq!(
            parse_cache_capacity(&parse(&["batch", "--cache-capacity", "8"])).unwrap(),
            8
        );
        assert_eq!(
            parse_cache_capacity(&parse(&["batch", "--cache-capacity", "0"])).unwrap_err(),
            "--cache-capacity must be at least 1, got 0"
        );
        assert_eq!(
            parse_cache_capacity(&parse(&["batch", "--cache-capacity", "-5"])).unwrap_err(),
            "invalid value for --cache-capacity: -5 (expected a positive integer)"
        );
        assert_eq!(
            parse_cache_capacity(&parse(&["batch", "--cache-capacity", "many"])).unwrap_err(),
            "invalid value for --cache-capacity: many (expected a positive integer)"
        );
        assert_eq!(
            parse_cache_capacity(&parse(&["batch", "--cache-capacity"])).unwrap_err(),
            "flag --cache-capacity needs a value"
        );
    }

    #[test]
    fn budget_zero_is_accepted_as_the_zero_resource_point() {
        // B = 0 is defined behavior, not an accident: the curve's anchor
        // point (see the parse_budgets docs and the committed curve
        // golden's 0:15:1 grid). Both spellings must keep accepting it.
        assert_eq!(parse_budgets("0").unwrap(), vec![0]);
        assert_eq!(parse_budgets("0,3").unwrap(), vec![0, 3]);
        assert_eq!(parse_budgets("0:0:1").unwrap(), vec![0]);
        assert_eq!(parse_budgets("0:15:1").unwrap().len(), 16);
    }
}
