//! `rtt lint` — the no-solve static checker over batch corpora and
//! instance spec files.
//!
//! Every **error** this module emits corresponds to a rejection the
//! executor path would produce anyway — [`crate::batch::build_requests`]
//! fails on exactly the lines this linter flags as errors, with the
//! same underlying message — so a lint-clean corpus cannot fail
//! admission. Every **warning** flags a line the batch admits but
//! answers degenerately (a zero deadline, a queue-depth bound that can
//! never trip, a family-tag mismatch); those mirror
//! [`rtt_engine::lint_requests`], the engine-level admission lint over
//! built requests, and an agreement test pins the two together.
//!
//! Unlike `build_requests`, which stops at the first bad line, the
//! linter keeps going: it reports **every** diagnosable line of the
//! corpus in one pass, in deterministic `(line, code, message)` order.
//! The `RTT0xx` code table lives in [`rtt_analyze::lint::CODES`] and is
//! documented (with the NDJSON diagnostic shape) in the
//! [`crate::batch`] wire docs under "Diagnostics".

use crate::args::parse_budgets;
use crate::json::Json;
use crate::spec::{InstanceSpec, SpecError};
use rtt_analyze::lint::{sort_diagnostics, Diagnostic};
use rtt_core::ArcInstance;
use rtt_engine::{Capability, Registry};

/// Maps a spec/build failure to its diagnostic code: RTT001 malformed
/// document, RTT002 dangling edge or missing arc duration, RTT003
/// cycle, RTT004 other instance-construction rejection, RTT005 invalid
/// duration table.
fn spec_error_code(e: &SpecError) -> &'static str {
    match e {
        SpecError::BadJson(_) => "RTT001",
        SpecError::BadEdge { .. } | SpecError::MissingArcDuration { .. } => "RTT002",
        SpecError::BadInstance(msg) if msg.contains("contains a cycle") => "RTT003",
        SpecError::BadInstance(_) => "RTT004",
        SpecError::BadDuration(_) => "RTT005",
    }
}

/// Lints a standalone instance document (the `rtt solve` file format).
/// Only the instance-level checks apply; diagnostics carry line 1.
pub fn lint_spec(text: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    match Json::parse(text) {
        Err(e) => diags.push(Diagnostic::error("RTT001", 1, e.to_string())),
        Ok(doc) => {
            if let Err(e) = InstanceSpec::from_json(&doc).and_then(|spec| spec.build()) {
                diags.push(Diagnostic::error(spec_error_code(&e), 1, e.to_string()));
            }
        }
    }
    diags
}

/// Lints a whole NDJSON batch corpus against `registry`. Blank lines
/// are skipped (matching the batch loader); diagnostics carry true
/// 1-based line numbers and come back sorted by
/// `(line, code, message)`.
pub fn lint_corpus(corpus: &str, registry: &Registry) -> Vec<Diagnostic> {
    // the RTT012 vacuous-queue-depth check needs the admitted batch
    // size: the count of non-blank lines, exactly what build_requests
    // would enqueue
    let batch_size = corpus.lines().filter(|l| !l.trim().is_empty()).count();
    let mut diags = Vec::new();
    for (idx, line) in corpus.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        lint_line(line, lineno, batch_size, registry, &mut diags);
    }
    sort_diagnostics(&mut diags);
    diags
}

/// Lints one request line, pushing every applicable diagnostic. Checks
/// are independent where the wire format allows it, so one line can
/// carry several diagnostics; instance-dependent checks are skipped
/// when the instance itself failed to build.
fn lint_line(
    line: &str,
    lineno: usize,
    batch_size: usize,
    registry: &Registry,
    diags: &mut Vec<Diagnostic>,
) {
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(e) => {
            diags.push(Diagnostic::error("RTT001", lineno, e.to_string()));
            return;
        }
    };
    if let Some(v) = doc.get("id") {
        if let Err(e) = v.as_str() {
            diags.push(Diagnostic::error("RTT001", lineno, format!("id: {e}")));
        }
    }
    // the instance document: structural errors split across RTT001-005
    let arc: Option<ArcInstance> = match doc.get("instance") {
        None => {
            diags.push(Diagnostic::error("RTT001", lineno, "missing field `instance`"));
            None
        }
        Some(instance) => match InstanceSpec::from_json(instance).and_then(|s| s.build()) {
            Ok(arc) => Some(arc),
            Err(e) => {
                diags.push(Diagnostic::error(spec_error_code(&e), lineno, e.to_string()));
                None
            }
        },
    };
    let uint_field = |diags: &mut Vec<Diagnostic>, field: &str| -> Option<u64> {
        match doc.get(field) {
            None => None,
            Some(v) => match v.as_u64() {
                Ok(u) => Some(u),
                Err(e) => {
                    diags.push(Diagnostic::error("RTT001", lineno, format!("{field}: {e}")));
                    None
                }
            },
        }
    };
    let budget = uint_field(diags, "budget");
    let target = uint_field(diags, "target");
    // `budgets`: array of grid points or a grid string; anything else —
    // wrong container, non-integer points, a malformed range — is a bad
    // sweep grid (RTT007)
    let has_budgets = doc.get("budgets").is_some();
    let grid: Option<Vec<u64>> = match doc.get("budgets") {
        None => None,
        Some(Json::Arr(items)) => {
            match items.iter().map(Json::as_u64).collect::<Result<Vec<u64>, _>>() {
                Ok(g) => Some(g),
                Err(e) => {
                    diags.push(Diagnostic::error("RTT007", lineno, format!("budgets: {e}")));
                    None
                }
            }
        }
        Some(Json::Str(s)) => match parse_budgets(s) {
            Ok(g) => Some(g),
            Err(e) => {
                diags.push(Diagnostic::error("RTT007", lineno, e));
                None
            }
        },
        Some(_) => {
            diags.push(Diagnostic::error(
                "RTT001",
                lineno,
                "budgets must be an array or a grid string",
            ));
            None
        }
    };
    if has_budgets {
        // sweep line: objective conflicts (RTT006), grid shape (RTT007),
        // solver pinning (RTT007/RTT008)
        if budget.is_some() || target.is_some() {
            diags.push(Diagnostic::error(
                "RTT006",
                lineno,
                "`budgets` conflicts with `budget`/`target`",
            ));
        }
        if doc.get("objective").is_some() {
            diags.push(Diagnostic::error(
                "RTT006",
                lineno,
                "`budgets` lines take no `objective` field",
            ));
        }
        if grid.as_ref().is_some_and(Vec::is_empty) {
            diags.push(Diagnostic::error(
                "RTT007",
                lineno,
                "`budgets` must name at least one grid point",
            ));
        }
        if let Some(v) = doc.get("solver") {
            match v.as_str() {
                Err(e) => diags.push(Diagnostic::error("RTT001", lineno, format!("solver: {e}"))),
                Ok(name) => match registry.resolve(name) {
                    None => diags.push(unknown_solver(lineno, name, registry)),
                    Some(s) if s.name() != "bicriteria" => {
                        diags.push(Diagnostic::error(
                            "RTT007",
                            lineno,
                            format!(
                                "sweep lines are answered by the bicriteria pipeline, not solver {name:?}"
                            ),
                        ));
                    }
                    Some(_) => {}
                },
            }
        }
    } else {
        // plain line: objective inference conflicts all map to RTT006
        match doc.get("objective") {
            Some(v) => match v.as_str() {
                Err(e) => {
                    diags.push(Diagnostic::error("RTT001", lineno, format!("objective: {e}")))
                }
                Ok("min-makespan") => {
                    if budget.is_none() && doc.get("budget").is_none() {
                        diags.push(Diagnostic::error(
                            "RTT006",
                            lineno,
                            "objective min-makespan needs a `budget`",
                        ));
                    }
                }
                Ok("min-resource") => {
                    if target.is_none() && doc.get("target").is_none() {
                        diags.push(Diagnostic::error(
                            "RTT006",
                            lineno,
                            "objective min-resource needs a `target`",
                        ));
                    }
                }
                Ok(other) => diags.push(Diagnostic::error(
                    "RTT006",
                    lineno,
                    format!("unknown objective {other:?}"),
                )),
            },
            None => match (doc.get("budget").is_some(), doc.get("target").is_some()) {
                (true, true) => diags.push(Diagnostic::error(
                    "RTT006",
                    lineno,
                    "give `objective` to disambiguate budget + target",
                )),
                (false, false) => diags.push(Diagnostic::error(
                    "RTT006",
                    lineno,
                    "need `budget` or `target`",
                )),
                _ => {}
            },
        }
        if let Some(v) = doc.get("solver") {
            match v.as_str() {
                Err(e) => diags.push(Diagnostic::error("RTT001", lineno, format!("solver: {e}"))),
                Ok(name) => match registry.resolve(name) {
                    None => diags.push(unknown_solver(lineno, name, registry)),
                    Some(s) => {
                        // family-tag mismatch: admitted, answered
                        // `unsupported` instead of solved (RTT013).
                        // Fixture solvers decline everything by design.
                        if !name.starts_with("fixture-") {
                            if let Some(a) = &arc {
                                if let Capability::Unsupported(reason) = s.supports(a) {
                                    diags.push(Diagnostic::warning(
                                        "RTT013",
                                        lineno,
                                        format!(
                                            "solver {:?} does not support this instance: {reason}",
                                            name
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                },
            }
        }
    }
    // alpha: in (0, 1) exclusive, mistype is RTT001, range is RTT010
    if let Some(v) = doc.get("alpha") {
        match v.as_f64() {
            Err(e) => diags.push(Diagnostic::error("RTT001", lineno, format!("alpha: {e}"))),
            Ok(alpha) if !(alpha > 0.0 && alpha < 1.0) => diags.push(Diagnostic::error(
                "RTT010",
                lineno,
                format!("alpha must be in (0, 1), got {alpha}"),
            )),
            Ok(_) => {}
        }
    }
    // deadline_ms 0 is admitted but always expires at dequeue (RTT011)
    if let Some(ms) = uint_field(diags, "deadline_ms") {
        if ms == 0 {
            diags.push(Diagnostic::warning(
                "RTT011",
                lineno,
                "deadline_ms 0: the request always expires at dequeue",
            ));
        }
    }
    uint_field(diags, "seed");
    // resource-budget fields: counter mistype is RTT001; a policy
    // without a limit, or an unknown policy name, is RTT009
    let mut any_limit = false;
    for field in ["max_pivots", "max_merge_steps", "max_sim_events", "max_queue_depth"] {
        let present = doc.get(field).is_some();
        any_limit |= present && uint_field(diags, field).is_some();
        // a mistyped limit still *declares* a limit for the orphan-policy
        // check: build_requests fails on the type first, and we already
        // flagged that
        any_limit |= present;
    }
    if let Some(v) = doc.get("on_exhaustion") {
        match v.as_str() {
            Err(e) => {
                diags.push(Diagnostic::error("RTT001", lineno, format!("on_exhaustion: {e}")))
            }
            Ok(name) => {
                if let Err(e) = rtt_engine::ExhaustionPolicy::parse(name) {
                    diags.push(Diagnostic::error("RTT009", lineno, e));
                } else if !any_limit {
                    diags.push(Diagnostic::error(
                        "RTT009",
                        lineno,
                        "on_exhaustion requires at least one max_* limit",
                    ));
                }
            }
        }
    }
    // a queue-depth bound at least the batch size can never trip (RTT012)
    if let Some(limit) = doc.get("max_queue_depth").and_then(|v| v.as_u64().ok()) {
        if limit >= batch_size as u64 {
            diags.push(Diagnostic::warning(
                "RTT012",
                lineno,
                format!("max_queue_depth {limit} can never trip in a batch of {batch_size}"),
            ));
        }
    }
}

fn unknown_solver(lineno: usize, name: &str, registry: &Registry) -> Diagnostic {
    Diagnostic::error(
        "RTT008",
        lineno,
        format!("unknown solver {name:?}; available: {}", registry.names().join(", ")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_analyze::lint::{has_errors, Severity};

    fn chain_line(id: &str, budget: u64) -> String {
        format!(
            r#"{{"id":"{id}","instance":{{"form":"node","nodes":[{{"label":"s","duration":{{"kind":"zero"}}}},{{"label":"x","duration":{{"kind":"step","tuples":[[0,10],[4,0]]}}}},{{"label":"t","duration":{{"kind":"zero"}}}}],"edges":[{{"src":0,"dst":1}},{{"src":1,"dst":2}}]}},"budget":{budget}}}"#
        )
    }

    #[test]
    fn clean_corpus_is_quiet() {
        let corpus = format!("{}\n\n{}\n", chain_line("a", 4), chain_line("b", 0));
        assert!(lint_corpus(&corpus, &Registry::standard()).is_empty());
    }

    #[test]
    fn every_bad_line_is_reported_not_just_the_first() {
        let corpus = format!(
            "not json\n{}\n{}\n",
            chain_line("ok", 4),
            chain_line("bad", 1).replace("\"budget\":1", "\"budget\":1,\"solver\":\"exat\"")
        );
        let diags = lint_corpus(&corpus, &Registry::standard());
        assert_eq!(
            diags.iter().map(|d| (d.line, d.code)).collect::<Vec<_>>(),
            vec![(1, "RTT001"), (3, "RTT008")]
        );
        assert!(has_errors(&diags));
    }

    #[test]
    fn instance_errors_map_to_their_codes() {
        let registry = Registry::standard();
        let cases: &[(&str, &str)] = &[
            (r#"{"budget":1}"#, "RTT001"),
            (
                r#"{"instance":{"form":"node","nodes":[{"duration":{"kind":"zero"}}],"edges":[{"src":0,"dst":9}]},"budget":1}"#,
                "RTT002",
            ),
            (
                r#"{"instance":{"form":"arc","nodes":[{"duration":{"kind":"zero"}},{"duration":{"kind":"zero"}}],"edges":[{"src":0,"dst":1}]},"budget":1}"#,
                "RTT002",
            ),
            (
                r#"{"instance":{"form":"node","nodes":[{"duration":{"kind":"zero"}},{"duration":{"kind":"zero"}},{"duration":{"kind":"zero"}}],"edges":[{"src":0,"dst":1},{"src":1,"dst":2},{"src":2,"dst":1}]},"budget":1}"#,
                "RTT003",
            ),
            (
                r#"{"instance":{"form":"node","nodes":[],"edges":[]},"budget":1}"#,
                "RTT004",
            ),
            (
                r#"{"instance":{"form":"node","nodes":[{"duration":{"kind":"step","tuples":[[0,5],[2,9]]}}],"edges":[]},"budget":1}"#,
                "RTT005",
            ),
        ];
        for (line, code) in cases {
            let diags = lint_corpus(line, &registry);
            assert!(
                diags.iter().any(|d| d.code == *code),
                "{line} should raise {code}, got {diags:?}"
            );
        }
    }

    #[test]
    fn warnings_do_not_block_and_match_engine_wording() {
        let registry = Registry::standard();
        let corpus = format!(
            "{}\n{}\n",
            chain_line("z", 1).replace("\"budget\":1", "\"budget\":1,\"deadline_ms\":0"),
            chain_line("q", 1).replace("\"budget\":1", "\"budget\":1,\"max_queue_depth\":50")
        );
        let diags = lint_corpus(&corpus, &registry);
        assert!(!has_errors(&diags));
        assert_eq!(
            diags.iter().map(|d| (d.line, d.code)).collect::<Vec<_>>(),
            vec![(1, "RTT011"), (2, "RTT012")]
        );
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
        assert_eq!(diags[0].message, "deadline_ms 0: the request always expires at dequeue");
        assert_eq!(diags[1].message, "max_queue_depth 50 can never trip in a batch of 2");
    }

    #[test]
    fn family_mismatch_is_a_warning() {
        // kway solver on a step-function chain: admitted, answered
        // `unsupported` — the lint says so up front
        let line =
            chain_line("m", 1).replace("\"budget\":1", "\"budget\":1,\"solver\":\"kway\"");
        let diags = lint_corpus(&line, &Registry::standard());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "RTT013");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("k-way"), "{}", diags[0].message);
    }

    #[test]
    fn sweep_conflicts_map_to_their_codes() {
        let registry = Registry::standard();
        let sweep = |extra: &str| {
            chain_line("s", 0).replace("\"budget\":0", &format!("\"budgets\":[1,2]{extra}"))
        };
        let cases: &[(String, &str)] = &[
            (sweep(",\"budget\":3"), "RTT006"),
            (sweep(",\"objective\":\"min-makespan\""), "RTT006"),
            (
                chain_line("s", 0).replace("\"budget\":0", "\"budgets\":[]"),
                "RTT007",
            ),
            (
                chain_line("s", 0).replace("\"budget\":0", "\"budgets\":\"5:1:1\""),
                "RTT007",
            ),
            (sweep(",\"solver\":\"exact\""), "RTT007"),
            (sweep(",\"solver\":\"nope\""), "RTT008"),
        ];
        for (line, code) in cases {
            let diags = lint_corpus(line, &registry);
            assert!(
                diags.iter().any(|d| d.code == *code),
                "{line} should raise {code}, got {diags:?}"
            );
        }
    }

    #[test]
    fn budget_spec_and_alpha_errors() {
        let registry = Registry::standard();
        let orphan = chain_line("a", 1)
            .replace("\"budget\":1", "\"budget\":1,\"on_exhaustion\":\"degrade\"");
        assert!(lint_corpus(&orphan, &registry).iter().any(|d| d.code == "RTT009"));
        let typo = chain_line("b", 1).replace(
            "\"budget\":1",
            "\"budget\":1,\"max_pivots\":5,\"on_exhaustion\":\"explode\"",
        );
        assert!(lint_corpus(&typo, &registry).iter().any(|d| d.code == "RTT009"));
        let alpha = chain_line("c", 1).replace("\"budget\":1", "\"budget\":1,\"alpha\":1.5");
        assert!(lint_corpus(&alpha, &registry).iter().any(|d| d.code == "RTT010"));
    }

    #[test]
    fn spec_files_lint_standalone() {
        assert!(lint_spec(r#"{"form":"node","nodes":[],"edges":[]}"#)
            .iter()
            .any(|d| d.code == "RTT004"));
        assert!(lint_spec("{").iter().any(|d| d.code == "RTT001"));
        let clean = r#"{"form":"node","nodes":[{"duration":{"kind":"zero"}},{"duration":{"kind":"recbinary","work":8}},{"duration":{"kind":"zero"}}],"edges":[{"src":0,"dst":1},{"src":1,"dst":2}]}"#;
        assert!(lint_spec(clean).is_empty());
    }
}
