//! The on-disk instance format: a small JSON schema for activity-on-node
//! and activity-on-arc instances, round-trippable to the `rtt-core`
//! types.
//!
//! ```json
//! {
//!   "form": "node",
//!   "nodes": [
//!     { "label": "s", "duration": { "kind": "zero" } },
//!     { "label": "x", "duration": { "kind": "recbinary", "work": 64 } },
//!     { "label": "t", "duration": { "kind": "zero" } }
//!   ],
//!   "edges": [ { "src": 0, "dst": 1 }, { "src": 1, "dst": 2 } ]
//! }
//! ```
//!
//! `form: "arc"` puts the durations on the edges instead (the `D'` form
//! gadgets are built in); nodes then need no payload and `nodes` is just
//! a count.

use rtt_core::{Activity, ArcInstance, Instance, InstanceError, Job};
use rtt_dag::Dag;
use rtt_duration::{Duration, Time, Tuple};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A duration function, as serialized.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "lowercase")]
pub enum DurationSpec {
    /// `t(r) = 0` everywhere.
    Zero,
    /// Constant duration `t`.
    Constant {
        /// The duration.
        t: Time,
    },
    /// General non-increasing step function (Eq. 1): explicit tuples.
    Step {
        /// `[resource, time]` pairs, strictly increasing resource,
        /// non-increasing time, first resource 0.
        tuples: Vec<(u64, Time)>,
    },
    /// k-way splitting (Eq. 2) for a job of `work` updates.
    Kway {
        /// Zero-resource duration `t_v(0)`.
        work: Time,
    },
    /// Recursive binary splitting (Eq. 3) for a job of `work` updates.
    Recbinary {
        /// Zero-resource duration `t_v(0)`.
        work: Time,
    },
}

impl DurationSpec {
    /// Builds the in-memory duration function.
    pub fn build(&self) -> Result<Duration, SpecError> {
        match self {
            DurationSpec::Zero => Ok(Duration::zero()),
            DurationSpec::Constant { t } => Ok(Duration::constant(*t)),
            DurationSpec::Step { tuples } => {
                let ts: Vec<Tuple> = tuples.iter().map(|&(r, t)| Tuple::new(r, t)).collect();
                Duration::step(ts).map_err(|e| SpecError::BadDuration(e.to_string()))
            }
            DurationSpec::Kway { work } => Ok(Duration::kway(*work)),
            DurationSpec::Recbinary { work } => Ok(Duration::recursive_binary(*work)),
        }
    }

    /// Serializes an in-memory duration (always as `step`/`zero`, the
    /// canonical representations are preserved exactly).
    pub fn from_duration(d: &Duration) -> DurationSpec {
        let tuples: Vec<(u64, Time)> = d.tuples().iter().map(|t| (t.resource, t.time)).collect();
        if tuples.len() == 1 && tuples[0].1 == 0 {
            DurationSpec::Zero
        } else if tuples.len() == 1 {
            DurationSpec::Constant { t: tuples[0].1 }
        } else {
            DurationSpec::Step { tuples }
        }
    }
}

/// A node of a `form: "node"` instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Display label (optional).
    #[serde(default)]
    pub label: String,
    /// The node's duration function.
    pub duration: DurationSpec,
}

/// An edge; `duration` is used only by `form: "arc"` instances.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Activity duration (arc form only; omit for precedence-only edges
    /// in node form).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub duration: Option<DurationSpec>,
    /// Display label (optional).
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub label: String,
}

/// Whether jobs live on nodes (`D`) or on arcs (`D'`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Form {
    /// Activity-on-node (the natural race-DAG form).
    Node,
    /// Activity-on-arc (`D'`; gadgets serialize this way).
    Arc,
}

/// The serialized instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Node vs arc form.
    pub form: Form,
    /// Node payloads (node form) — for arc form, only the length is
    /// used and durations may be `zero`.
    pub nodes: Vec<NodeSpec>,
    /// Edges (with durations in arc form).
    pub edges: Vec<EdgeSpec>,
}

/// Errors loading a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A duration failed validation.
    BadDuration(String),
    /// An edge references a missing node.
    BadEdge {
        /// Index of the offending edge.
        edge: usize,
    },
    /// Arc-form edge without a duration.
    MissingArcDuration {
        /// Index of the offending edge.
        edge: usize,
    },
    /// The graph is not a two-terminal DAG.
    BadInstance(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadDuration(e) => write!(f, "invalid duration: {e}"),
            SpecError::BadEdge { edge } => write!(f, "edge {edge} references a missing node"),
            SpecError::MissingArcDuration { edge } => {
                write!(f, "arc-form edge {edge} has no duration")
            }
            SpecError::BadInstance(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<InstanceError> for SpecError {
    fn from(e: InstanceError) -> Self {
        SpecError::BadInstance(e.to_string())
    }
}

impl InstanceSpec {
    /// Builds the arc-form instance (node-form specs are transformed via
    /// `to_arc_form`). Returns the instance plus per-node labels for
    /// rendering.
    pub fn build(&self) -> Result<ArcInstance, SpecError> {
        match self.form {
            Form::Node => {
                let mut g: Dag<Job, ()> = Dag::new();
                for n in &self.nodes {
                    g.add_node(Job::labeled(n.label.clone(), n.duration.build()?));
                }
                for (i, e) in self.edges.iter().enumerate() {
                    if e.src >= self.nodes.len() || e.dst >= self.nodes.len() {
                        return Err(SpecError::BadEdge { edge: i });
                    }
                    g.add_edge(
                        rtt_dag::NodeId(e.src as u32),
                        rtt_dag::NodeId(e.dst as u32),
                        (),
                    )
                    .map_err(|_| SpecError::BadEdge { edge: i })?;
                }
                let inst = Instance::new(g)?;
                Ok(rtt_core::to_arc_form(&inst).0)
            }
            Form::Arc => {
                let mut g: Dag<(), Activity> = Dag::new();
                for _ in &self.nodes {
                    g.add_node(());
                }
                for (i, e) in self.edges.iter().enumerate() {
                    if e.src >= self.nodes.len() || e.dst >= self.nodes.len() {
                        return Err(SpecError::BadEdge { edge: i });
                    }
                    let dur = e
                        .duration
                        .as_ref()
                        .ok_or(SpecError::MissingArcDuration { edge: i })?
                        .build()?;
                    g.add_edge(
                        rtt_dag::NodeId(e.src as u32),
                        rtt_dag::NodeId(e.dst as u32),
                        Activity::labeled(e.label.clone(), dur),
                    )
                    .map_err(|_| SpecError::BadEdge { edge: i })?;
                }
                Ok(ArcInstance::new(g)?)
            }
        }
    }

    /// Serializes an arc instance.
    pub fn from_arc(arc: &ArcInstance) -> InstanceSpec {
        let d = arc.dag();
        InstanceSpec {
            form: Form::Arc,
            nodes: d
                .node_ids()
                .map(|_| NodeSpec {
                    label: String::new(),
                    duration: DurationSpec::Zero,
                })
                .collect(),
            edges: d
                .edge_refs()
                .map(|e| EdgeSpec {
                    src: e.src.index(),
                    dst: e.dst.index(),
                    duration: Some(DurationSpec::from_duration(&e.weight.duration)),
                    label: e.weight.label.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_spec() -> InstanceSpec {
        InstanceSpec {
            form: Form::Node,
            nodes: vec![
                NodeSpec {
                    label: "s".into(),
                    duration: DurationSpec::Zero,
                },
                NodeSpec {
                    label: "x".into(),
                    duration: DurationSpec::Step {
                        tuples: vec![(0, 10), (4, 0)],
                    },
                },
                NodeSpec {
                    label: "t".into(),
                    duration: DurationSpec::Zero,
                },
            ],
            edges: vec![
                EdgeSpec {
                    src: 0,
                    dst: 1,
                    duration: None,
                    label: String::new(),
                },
                EdgeSpec {
                    src: 1,
                    dst: 2,
                    duration: None,
                    label: String::new(),
                },
            ],
        }
    }

    #[test]
    fn node_form_builds_and_solves() {
        let arc = chain_spec().build().unwrap();
        assert_eq!(arc.base_makespan(), 10);
        let r = rtt_core::exact::solve_exact(&arc, 4);
        assert_eq!(r.solution.makespan, 0);
    }

    #[test]
    fn json_round_trip() {
        let spec = chain_spec();
        let text = serde_json::to_string_pretty(&spec).unwrap();
        let back: InstanceSpec = serde_json::from_str(&text).unwrap();
        let a = spec.build().unwrap();
        let b = back.build().unwrap();
        assert_eq!(a.base_makespan(), b.base_makespan());
        assert_eq!(a.dag().edge_count(), b.dag().edge_count());
    }

    #[test]
    fn arc_round_trip_preserves_durations() {
        let arc = chain_spec().build().unwrap();
        let spec = InstanceSpec::from_arc(&arc);
        let rebuilt = spec.build().unwrap();
        assert_eq!(rebuilt.base_makespan(), arc.base_makespan());
        assert_eq!(rebuilt.ideal_makespan(), arc.ideal_makespan());
        assert_eq!(rebuilt.dag().edge_count(), arc.dag().edge_count());
    }

    #[test]
    fn bad_edge_rejected() {
        let mut spec = chain_spec();
        spec.edges[1].dst = 99;
        assert_eq!(spec.build().unwrap_err(), SpecError::BadEdge { edge: 1 });
    }

    #[test]
    fn arc_form_requires_durations() {
        let mut spec = chain_spec();
        spec.form = Form::Arc;
        assert_eq!(
            spec.build().unwrap_err(),
            SpecError::MissingArcDuration { edge: 0 }
        );
    }

    #[test]
    fn bad_step_function_rejected() {
        let spec = DurationSpec::Step {
            tuples: vec![(0, 5), (2, 9)], // increasing time: invalid
        };
        assert!(matches!(spec.build(), Err(SpecError::BadDuration(_))));
    }

    #[test]
    fn cyclic_instance_rejected() {
        let mut spec = chain_spec();
        spec.edges.push(EdgeSpec {
            src: 2,
            dst: 0,
            duration: None,
            label: String::new(),
        });
        assert!(matches!(spec.build(), Err(SpecError::BadInstance(_))));
    }

    #[test]
    fn duration_spec_families_build() {
        assert_eq!(DurationSpec::Kway { work: 100 }.build().unwrap().time(0), 100);
        assert_eq!(
            DurationSpec::Recbinary { work: 64 }.build().unwrap().time(0),
            64
        );
        assert_eq!(DurationSpec::Constant { t: 7 }.build().unwrap().time(9), 7);
    }
}
