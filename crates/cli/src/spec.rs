//! The on-disk instance format: a small JSON schema for activity-on-node
//! and activity-on-arc instances, round-trippable to the `rtt-core`
//! types.
//!
//! ```json
//! {
//!   "form": "node",
//!   "nodes": [
//!     { "label": "s", "duration": { "kind": "zero" } },
//!     { "label": "x", "duration": { "kind": "recbinary", "work": 64 } },
//!     { "label": "t", "duration": { "kind": "zero" } }
//!   ],
//!   "edges": [ { "src": 0, "dst": 1 }, { "src": 1, "dst": 2 } ]
//! }
//! ```
//!
//! `form: "arc"` puts the durations on the edges instead (the `D'` form
//! gadgets are built in); nodes then need no payload and `nodes` is just
//! a count.

use crate::json::{Json, JsonError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtt_core::{Activity, ArcInstance, Instance, InstanceError, Job, ReducerFamily};
use rtt_dag::Dag;
use rtt_duration::{Duration, Time, Tuple};
use std::fmt;

/// A duration function, as serialized (`{"kind": "...", ...}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurationSpec {
    /// `t(r) = 0` everywhere.
    Zero,
    /// Constant duration `t`.
    Constant {
        /// The duration.
        t: Time,
    },
    /// General non-increasing step function (Eq. 1): explicit tuples.
    Step {
        /// `[resource, time]` pairs, strictly increasing resource,
        /// non-increasing time, first resource 0.
        tuples: Vec<(u64, Time)>,
    },
    /// k-way splitting (Eq. 2) for a job of `work` updates.
    Kway {
        /// Zero-resource duration `t_v(0)`.
        work: Time,
    },
    /// Recursive binary splitting (Eq. 3) for a job of `work` updates.
    Recbinary {
        /// Zero-resource duration `t_v(0)`.
        work: Time,
    },
}

impl DurationSpec {
    /// Builds the in-memory duration function.
    pub fn build(&self) -> Result<Duration, SpecError> {
        match self {
            DurationSpec::Zero => Ok(Duration::zero()),
            DurationSpec::Constant { t } => Ok(Duration::constant(*t)),
            DurationSpec::Step { tuples } => {
                let ts: Vec<Tuple> = tuples.iter().map(|&(r, t)| Tuple::new(r, t)).collect();
                Duration::step(ts).map_err(|e| SpecError::BadDuration(e.to_string()))
            }
            DurationSpec::Kway { work } => Ok(Duration::kway(*work)),
            DurationSpec::Recbinary { work } => Ok(Duration::recursive_binary(*work)),
        }
    }

    /// Serializes an in-memory duration. The reducer families keep
    /// their tags (`kway`/`recbinary` documents rebuild to the *same*
    /// family, so family-specific solvers still apply after a
    /// round-trip — race-derived instances depend on this); general
    /// step functions serialize as `step`/`constant`/`zero`.
    pub fn from_duration(d: &Duration) -> DurationSpec {
        use rtt_duration::DurationKind;
        match d.kind() {
            DurationKind::KWay { base } => return DurationSpec::Kway { work: base },
            DurationKind::RecursiveBinary { base } => {
                return DurationSpec::Recbinary { work: base }
            }
            DurationKind::Step => {}
        }
        let tuples: Vec<(u64, Time)> = d.tuples().iter().map(|t| (t.resource, t.time)).collect();
        if tuples.len() == 1 && tuples[0].1 == 0 {
            DurationSpec::Zero
        } else if tuples.len() == 1 {
            DurationSpec::Constant { t: tuples[0].1 }
        } else {
            DurationSpec::Step { tuples }
        }
    }
}

/// A node of a `form: "node"` instance.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Display label (optional; defaults to empty).
    pub label: String,
    /// The node's duration function.
    pub duration: DurationSpec,
}

/// An edge; `duration` is used only by `form: "arc"` instances.
#[derive(Debug, Clone)]
pub struct EdgeSpec {
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Activity duration (arc form only; omit for precedence-only edges
    /// in node form).
    pub duration: Option<DurationSpec>,
    /// Display label (optional; omitted from JSON when empty).
    pub label: String,
}

/// Whether jobs live on nodes (`D`) or on arcs (`D'`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Form {
    /// Activity-on-node (the natural race-DAG form).
    Node,
    /// Activity-on-arc (`D'`; gadgets serialize this way).
    Arc,
}

/// The serialized instance.
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    /// Node vs arc form.
    pub form: Form,
    /// Node payloads (node form) — for arc form, only the length is
    /// used and durations may be `zero`.
    pub nodes: Vec<NodeSpec>,
    /// Edges (with durations in arc form).
    pub edges: Vec<EdgeSpec>,
}

/// Errors loading a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A duration failed validation.
    BadDuration(String),
    /// An edge references a missing node.
    BadEdge {
        /// Index of the offending edge.
        edge: usize,
    },
    /// Arc-form edge without a duration.
    MissingArcDuration {
        /// Index of the offending edge.
        edge: usize,
    },
    /// The graph is not a two-terminal DAG.
    BadInstance(String),
    /// The JSON text does not match the instance schema.
    BadJson(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadDuration(e) => write!(f, "invalid duration: {e}"),
            SpecError::BadEdge { edge } => write!(f, "edge {edge} references a missing node"),
            SpecError::MissingArcDuration { edge } => {
                write!(f, "arc-form edge {edge} has no duration")
            }
            SpecError::BadInstance(e) => write!(f, "invalid instance: {e}"),
            SpecError::BadJson(e) => write!(f, "invalid JSON: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<InstanceError> for SpecError {
    fn from(e: InstanceError) -> Self {
        SpecError::BadInstance(e.to_string())
    }
}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::BadJson(e.to_string())
    }
}

impl InstanceSpec {
    /// Builds the arc-form instance (node-form specs are transformed via
    /// `to_arc_form`). Returns the instance plus per-node labels for
    /// rendering.
    pub fn build(&self) -> Result<ArcInstance, SpecError> {
        match self.form {
            Form::Node => {
                let mut g: Dag<Job, ()> = Dag::new();
                for n in &self.nodes {
                    g.add_node(Job::labeled(n.label.clone(), n.duration.build()?));
                }
                for (i, e) in self.edges.iter().enumerate() {
                    if e.src >= self.nodes.len() || e.dst >= self.nodes.len() {
                        return Err(SpecError::BadEdge { edge: i });
                    }
                    g.add_edge(
                        rtt_dag::NodeId(e.src as u32),
                        rtt_dag::NodeId(e.dst as u32),
                        (),
                    )
                    .map_err(|_| SpecError::BadEdge { edge: i })?;
                }
                let inst = Instance::new(g)?;
                Ok(rtt_core::to_arc_form(&inst).0)
            }
            Form::Arc => {
                let mut g: Dag<(), Activity> = Dag::new();
                for _ in &self.nodes {
                    g.add_node(());
                }
                for (i, e) in self.edges.iter().enumerate() {
                    if e.src >= self.nodes.len() || e.dst >= self.nodes.len() {
                        return Err(SpecError::BadEdge { edge: i });
                    }
                    let dur = e
                        .duration
                        .as_ref()
                        .ok_or(SpecError::MissingArcDuration { edge: i })?
                        .build()?;
                    g.add_edge(
                        rtt_dag::NodeId(e.src as u32),
                        rtt_dag::NodeId(e.dst as u32),
                        Activity::labeled(e.label.clone(), dur),
                    )
                    .map_err(|_| SpecError::BadEdge { edge: i })?;
                }
                Ok(ArcInstance::new(g)?)
            }
        }
    }

    /// Serializes to pretty-printed JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Parses an instance from JSON text.
    pub fn from_json_str(text: &str) -> Result<InstanceSpec, SpecError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Serializes to a JSON tree.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("form".into(), self.form.to_json()),
            (
                "nodes".into(),
                Json::Arr(self.nodes.iter().map(NodeSpec::to_json).collect()),
            ),
            (
                "edges".into(),
                Json::Arr(self.edges.iter().map(EdgeSpec::to_json).collect()),
            ),
        ])
    }

    /// Reads an instance from a JSON tree.
    pub fn from_json(v: &Json) -> Result<InstanceSpec, SpecError> {
        let form = Form::from_json(v.require("form")?)?;
        let nodes = v
            .require("nodes")?
            .as_arr()?
            .iter()
            .map(NodeSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let edges = v
            .require("edges")?
            .as_arr()?
            .iter()
            .map(EdgeSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(InstanceSpec { form, nodes, edges })
    }

    /// Serializes an arc instance.
    pub fn from_arc(arc: &ArcInstance) -> InstanceSpec {
        let d = arc.dag();
        InstanceSpec {
            form: Form::Arc,
            nodes: d
                .node_ids()
                .map(|_| NodeSpec {
                    label: String::new(),
                    duration: DurationSpec::Zero,
                })
                .collect(),
            edges: d
                .edge_refs()
                .map(|e| EdgeSpec {
                    src: e.src.index(),
                    dst: e.dst.index(),
                    duration: Some(DurationSpec::from_duration(&e.weight.duration)),
                    label: e.weight.label.clone(),
                })
                .collect(),
        }
    }
}

/// Serializes a race-derived [`Instance`] (activity on nodes) through
/// its arc form — the canonical on-disk shape every race gen kind
/// shares.
fn spec_from_instance(inst: &Instance) -> InstanceSpec {
    InstanceSpec::from_arc(&rtt_core::to_arc_form(inst).0)
}

/// The Figure 3 **Parallel-MM race workload**: the naive fully-parallel
/// `n×n` matrix multiply races on every output cell; its race DAG
/// (`w_Z = n` updates per `Z[i][j]`, X cells as pure inputs) becomes an
/// instance with `family` duration functions. This is the paper's
/// motivating program served as a first-class workload — `rtt gen
/// --kind race-mm`.
pub fn race_mm_spec(n: u64, family: ReducerFamily) -> Result<InstanceSpec, SpecError> {
    if n == 0 {
        return Err(SpecError::BadInstance(
            "race-mm needs a matrix dimension ≥ 1".into(),
        ));
    }
    let (prog, _) = rtt_race::mm::parallel_mm_racy(n);
    let inst = rtt_core::instance_from_program(&prog, family)
        .map_err(|e| SpecError::BadInstance(e.to_string()))?;
    Ok(spec_from_instance(&inst))
}

/// A seeded random **fork-join race program** (`rtt gen --kind
/// race-forkjoin`): `stages` parallel stages of `width` cells, each
/// receiving up to `contention` logically parallel updates — see
/// [`rtt_race::gen::random_fork_join`]. The program's race DAG becomes
/// an instance with `family` duration functions.
pub fn race_forkjoin_spec(
    seed: u64,
    stages: usize,
    width: usize,
    contention: usize,
    family: ReducerFamily,
) -> Result<InstanceSpec, SpecError> {
    if stages == 0 || width == 0 || contention == 0 {
        return Err(SpecError::BadInstance(
            "race-forkjoin needs stages, width, and contention ≥ 1".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let prog = rtt_race::gen::random_fork_join(&mut rng, stages, width, contention);
    let inst = rtt_core::instance_from_program(&prog, family)
        .map_err(|e| SpecError::BadInstance(e.to_string()))?;
    Ok(spec_from_instance(&inst))
}

impl Form {
    fn to_json(self) -> Json {
        Json::Str(
            match self {
                Form::Node => "node",
                Form::Arc => "arc",
            }
            .into(),
        )
    }

    fn from_json(v: &Json) -> Result<Form, SpecError> {
        match v.as_str()? {
            "node" => Ok(Form::Node),
            "arc" => Ok(Form::Arc),
            other => Err(SpecError::BadJson(format!("unknown form `{other}`"))),
        }
    }
}

impl NodeSpec {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("duration".into(), self.duration.to_json()),
        ])
    }

    fn from_json(v: &Json) -> Result<NodeSpec, SpecError> {
        Ok(NodeSpec {
            label: match v.get("label") {
                Some(l) => l.as_str()?.to_string(),
                None => String::new(),
            },
            duration: DurationSpec::from_json(v.require("duration")?)?,
        })
    }
}

impl EdgeSpec {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("src".into(), Json::UInt(self.src as u64)),
            ("dst".into(), Json::UInt(self.dst as u64)),
        ];
        if let Some(d) = &self.duration {
            fields.push(("duration".into(), d.to_json()));
        }
        if !self.label.is_empty() {
            fields.push(("label".into(), Json::Str(self.label.clone())));
        }
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<EdgeSpec, SpecError> {
        Ok(EdgeSpec {
            src: v.require("src")?.as_usize()?,
            dst: v.require("dst")?.as_usize()?,
            duration: match v.get("duration") {
                None | Some(Json::Null) => None,
                Some(d) => Some(DurationSpec::from_json(d)?),
            },
            label: match v.get("label") {
                Some(l) => l.as_str()?.to_string(),
                None => String::new(),
            },
        })
    }
}

impl DurationSpec {
    fn to_json(&self) -> Json {
        let kind = |k: &str| ("kind".to_string(), Json::Str(k.into()));
        match self {
            DurationSpec::Zero => Json::Obj(vec![kind("zero")]),
            DurationSpec::Constant { t } => {
                Json::Obj(vec![kind("constant"), ("t".into(), Json::UInt(*t))])
            }
            DurationSpec::Step { tuples } => Json::Obj(vec![
                kind("step"),
                (
                    "tuples".into(),
                    Json::Arr(
                        tuples
                            .iter()
                            .map(|&(r, t)| Json::Arr(vec![Json::UInt(r), Json::UInt(t)]))
                            .collect(),
                    ),
                ),
            ]),
            DurationSpec::Kway { work } => {
                Json::Obj(vec![kind("kway"), ("work".into(), Json::UInt(*work))])
            }
            DurationSpec::Recbinary { work } => {
                Json::Obj(vec![kind("recbinary"), ("work".into(), Json::UInt(*work))])
            }
        }
    }

    fn from_json(v: &Json) -> Result<DurationSpec, SpecError> {
        match v.require("kind")?.as_str()? {
            "zero" => Ok(DurationSpec::Zero),
            "constant" => Ok(DurationSpec::Constant {
                t: v.require("t")?.as_u64()?,
            }),
            "step" => Ok(DurationSpec::Step {
                tuples: v
                    .require("tuples")?
                    .as_arr()?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_arr()?;
                        if pair.len() != 2 {
                            return Err(JsonError::shape("step tuple must be [resource, time]"));
                        }
                        Ok((pair[0].as_u64()?, pair[1].as_u64()?))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "kway" => Ok(DurationSpec::Kway {
                work: v.require("work")?.as_u64()?,
            }),
            "recbinary" => Ok(DurationSpec::Recbinary {
                work: v.require("work")?.as_u64()?,
            }),
            other => Err(SpecError::BadJson(format!("unknown duration kind `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_spec() -> InstanceSpec {
        InstanceSpec {
            form: Form::Node,
            nodes: vec![
                NodeSpec {
                    label: "s".into(),
                    duration: DurationSpec::Zero,
                },
                NodeSpec {
                    label: "x".into(),
                    duration: DurationSpec::Step {
                        tuples: vec![(0, 10), (4, 0)],
                    },
                },
                NodeSpec {
                    label: "t".into(),
                    duration: DurationSpec::Zero,
                },
            ],
            edges: vec![
                EdgeSpec {
                    src: 0,
                    dst: 1,
                    duration: None,
                    label: String::new(),
                },
                EdgeSpec {
                    src: 1,
                    dst: 2,
                    duration: None,
                    label: String::new(),
                },
            ],
        }
    }

    #[test]
    fn node_form_builds_and_solves() {
        let arc = chain_spec().build().unwrap();
        assert_eq!(arc.base_makespan(), 10);
        let r = rtt_core::exact::solve_exact(&arc, 4);
        assert_eq!(r.solution.makespan, 0);
    }

    #[test]
    fn json_round_trip() {
        let spec = chain_spec();
        let text = spec.to_json_string();
        let back = InstanceSpec::from_json_str(&text).unwrap();
        let a = spec.build().unwrap();
        let b = back.build().unwrap();
        assert_eq!(a.base_makespan(), b.base_makespan());
        assert_eq!(a.dag().edge_count(), b.dag().edge_count());
    }

    #[test]
    fn legacy_serde_format_still_parses() {
        // A document exactly as the previous serde-based build wrote it.
        let text = r#"{
  "form": "node",
  "nodes": [
    { "label": "s", "duration": { "kind": "zero" } },
    { "label": "x", "duration": { "kind": "step", "tuples": [[0, 10], [4, 0]] } },
    { "duration": { "kind": "recbinary", "work": 64 } }
  ],
  "edges": [ { "src": 0, "dst": 1 }, { "src": 1, "dst": 2, "label": "hot" } ]
}"#;
        let spec = InstanceSpec::from_json_str(text).unwrap();
        assert_eq!(spec.nodes.len(), 3);
        assert_eq!(spec.nodes[2].label, "");
        assert_eq!(spec.edges[1].label, "hot");
        spec.build().unwrap();
    }

    #[test]
    fn arc_round_trip_preserves_durations() {
        let arc = chain_spec().build().unwrap();
        let spec = InstanceSpec::from_arc(&arc);
        let rebuilt = spec.build().unwrap();
        assert_eq!(rebuilt.base_makespan(), arc.base_makespan());
        assert_eq!(rebuilt.ideal_makespan(), arc.ideal_makespan());
        assert_eq!(rebuilt.dag().edge_count(), arc.dag().edge_count());
    }

    #[test]
    fn bad_edge_rejected() {
        let mut spec = chain_spec();
        spec.edges[1].dst = 99;
        assert_eq!(spec.build().unwrap_err(), SpecError::BadEdge { edge: 1 });
    }

    #[test]
    fn arc_form_requires_durations() {
        let mut spec = chain_spec();
        spec.form = Form::Arc;
        assert_eq!(
            spec.build().unwrap_err(),
            SpecError::MissingArcDuration { edge: 0 }
        );
    }

    #[test]
    fn bad_step_function_rejected() {
        let spec = DurationSpec::Step {
            tuples: vec![(0, 5), (2, 9)], // increasing time: invalid
        };
        assert!(matches!(spec.build(), Err(SpecError::BadDuration(_))));
    }

    #[test]
    fn cyclic_instance_rejected() {
        let mut spec = chain_spec();
        spec.edges.push(EdgeSpec {
            src: 2,
            dst: 0,
            duration: None,
            label: String::new(),
        });
        assert!(matches!(spec.build(), Err(SpecError::BadInstance(_))));
    }

    #[test]
    fn race_mm_spec_round_trips_and_builds() {
        let n = 3u64;
        let spec = race_mm_spec(n, ReducerFamily::RecursiveBinary).unwrap();
        // 2n² cells + two normalization terminals, each split into an
        // in/out pair by the activity-on-arc transformation
        assert_eq!(spec.nodes.len() as u64, 2 * (2 * n * n + 2));
        let arc = spec.build().unwrap();
        assert_eq!(arc.base_makespan(), n, "one Z cell's n updates");
        let back = InstanceSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(back.build().unwrap().base_makespan(), n);
        // n = 8 has improvable recbinary cells: a real tradeoff exists
        let big = race_mm_spec(8, ReducerFamily::RecursiveBinary)
            .unwrap()
            .build()
            .unwrap();
        assert!(!big.improvable_edges().is_empty());
        assert!(big.ideal_makespan() < big.base_makespan());
        assert!(race_mm_spec(0, ReducerFamily::KWay).is_err());
    }

    #[test]
    fn family_tags_survive_serialization() {
        // the family solvers dispatch on the duration *kind*, so a
        // kway/recbinary instance must still be kway/recbinary after a
        // gen → JSON → build round-trip
        use rtt_duration::DurationKind;
        let spec = race_mm_spec(8, ReducerFamily::RecursiveBinary).unwrap();
        let rebuilt = InstanceSpec::from_json_str(&spec.to_json_string())
            .unwrap()
            .build()
            .unwrap();
        assert!(matches!(
            rebuilt.dominant_kind(),
            Some(DurationKind::RecursiveBinary { .. })
        ));
        let spec = race_mm_spec(9, ReducerFamily::KWay).unwrap();
        assert!(matches!(
            spec.build().unwrap().dominant_kind(),
            Some(DurationKind::KWay { .. })
        ));
    }

    #[test]
    fn race_forkjoin_spec_is_seed_deterministic() {
        let a = race_forkjoin_spec(9, 2, 3, 8, ReducerFamily::RecursiveBinary).unwrap();
        let b = race_forkjoin_spec(9, 2, 3, 8, ReducerFamily::RecursiveBinary).unwrap();
        assert_eq!(a.to_json_string(), b.to_json_string());
        let c = race_forkjoin_spec(10, 2, 3, 8, ReducerFamily::RecursiveBinary).unwrap();
        assert_ne!(a.to_json_string(), c.to_json_string(), "seed must matter");
        a.build().unwrap();
        assert!(race_forkjoin_spec(1, 0, 3, 8, ReducerFamily::KWay).is_err());
    }

    #[test]
    fn duration_spec_families_build() {
        assert_eq!(DurationSpec::Kway { work: 100 }.build().unwrap().time(0), 100);
        assert_eq!(
            DurationSpec::Recbinary { work: 64 }.build().unwrap().time(0),
            64
        );
        assert_eq!(DurationSpec::Constant { t: 7 }.build().unwrap().time(9), 7);
    }
}
