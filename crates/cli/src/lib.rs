//! # rtt-cli — command-line front end for the resource-time tradeoff
//!
//! A small JSON instance format ([`spec`]) plus the `rtt` binary:
//!
//! ```text
//! rtt gen --kind race --nodes 8 --seed 7 > instance.json
//! rtt gen --kind race-mm --n 8 > mm.json          # Figure 3 Parallel-MM races
//! rtt gen --kind race-forkjoin --seed 7 > fj.json # random racy program
//! rtt info instance.json
//! rtt solve instance.json --budget 8 --solver exact --plan
//! rtt min-resource instance.json --target 10
//! rtt batch corpus.ndjson --threads 4 --solver all > reports.ndjson
//! rtt regimes instance.json --budget 8
//! rtt dot instance.json | dot -Tpng > instance.png
//! ```
//!
//! Solver dispatch (for `solve`, `min-resource`, and `batch`) goes
//! through `rtt_engine`'s registry: `--solver` accepts any
//! [`rtt_engine::Registry::standard`] name, and `batch` fans each
//! request out to every supporting solver when no name is given.
//!
//! The instance format is documented on [`spec::InstanceSpec`]; the
//! NDJSON batch request/report wire format on [`batch`]. Everything the
//! binary does is also available as library calls for embedding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod batch;
pub mod json;
pub mod lint;
pub mod spec;

pub use args::{parse_args, Args};
pub use batch::{build_requests, report_line};
pub use lint::{lint_corpus, lint_spec};
pub use spec::{
    race_forkjoin_spec, race_mm_spec, DurationSpec, EdgeSpec, Form, InstanceSpec, NodeSpec,
    SpecError,
};
