//! # rtt-cli — command-line front end for the resource-time tradeoff
//!
//! A small JSON instance format ([`spec`]) plus the `rtt` binary:
//!
//! ```text
//! rtt gen --kind race --nodes 8 --seed 7 > instance.json
//! rtt info instance.json
//! rtt solve instance.json --budget 8 --solver exact --plan
//! rtt min-resource instance.json --target 10
//! rtt regimes instance.json --budget 8
//! rtt dot instance.json | dot -Tpng > instance.png
//! ```
//!
//! The format is documented on [`spec::InstanceSpec`]; everything the
//! binary does is also available as library calls for embedding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod spec;

pub use spec::{DurationSpec, EdgeSpec, Form, InstanceSpec, NodeSpec, SpecError};
