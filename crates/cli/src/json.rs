//! A small self-contained JSON layer for the instance format.
//!
//! The build environment vendors no `serde`/`serde_json`, so the spec
//! types serialize through this hand-rolled [`Json`] tree instead. The
//! wire format is byte-compatible with what the previous serde derives
//! produced (adjacent `"kind"` tags, `[resource, time]` tuple arrays,
//! omitted empty labels), so instances written by older builds load
//! unchanged.
//!
//! Integers are kept exact: values without a fraction or exponent that
//! fit `u64` parse to [`Json::UInt`], so `∞`-sentinel durations
//! (`u64::MAX / 4`, not representable in `f64`) round-trip losslessly.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

/// Parse / shape errors, with a byte offset where applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input (parse errors only).
    pub at: Option<usize>,
}

impl JsonError {
    pub(crate) fn shape(msg: impl Into<String>) -> Self {
        JsonError {
            msg: msg.into(),
            at: None,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(at) => write!(f, "{} (at byte {at})", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document (must consume the whole input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    /// Pretty-prints with two-space indentation (serde_json style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders on one line with no whitespace — the NDJSON form (one
    /// document per line, byte-stable for a fixed value).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::UInt(_) | Json::Float(_) | Json::Str(_) => {
                self.write(out, 0)
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    // ---- typed accessors (shape errors name the missing piece) ----

    /// The object's field `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required object field.
    pub fn require(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::shape(format!("missing field `{key}`")))
    }

    /// This value as a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::shape(format!("expected string, got {other:?}"))),
        }
    }

    /// This value as a `u64` (exact integers only).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::UInt(u) => Ok(*u),
            other => Err(JsonError::shape(format!(
                "expected unsigned integer, got {other:?}"
            ))),
        }
    }

    /// This value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::UInt(u) => Ok(*u as f64),
            Json::Float(x) => Ok(*x),
            other => Err(JsonError::shape(format!("expected number, got {other:?}"))),
        }
    }

    /// This value as a `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        usize::try_from(self.as_u64()?)
            .map_err(|_| JsonError::shape("integer out of usize range"))
    }

    /// This value as an array.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::shape(format!("expected array, got {other:?}"))),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: Some(self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // instance format; reject them loudly.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid UTF-8");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let text = r#"{"form":"node","nodes":[{"label":"s","n":0}],"edges":[[0,10],[4,0]],"ok":true,"none":null,"f":1.5}"#;
        let v = Json::parse(text).unwrap();
        let back = Json::parse(&v.pretty()).unwrap();
        assert_eq!(v, back);
        assert_eq!(v.get("form").unwrap().as_str().unwrap(), "node");
        assert_eq!(
            v.get("edges").unwrap().as_arr().unwrap()[0]
                .as_arr()
                .unwrap()[1]
                .as_u64()
                .unwrap(),
            10
        );
    }

    #[test]
    fn compact_is_one_line_and_round_trips() {
        let text = r#"{"form":"node","nodes":[{"label":"s","n":0}],"edges":[[0,10],[4,0]],"ok":true,"none":null,"f":1.5}"#;
        let v = Json::parse(text).unwrap();
        let line = v.compact();
        assert!(!line.contains('\n') && !line.contains(' '), "{line}");
        assert_eq!(Json::parse(&line).unwrap(), v);
        assert_eq!(line, text, "compact matches canonical NDJSON spelling");
    }

    #[test]
    fn huge_integers_exact() {
        let big = u64::MAX / 4;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v, Json::UInt(big));
        assert_eq!(Json::parse(&v.pretty()).unwrap(), Json::UInt(big));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn errors_carry_position() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert!(e.at.is_some());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(Json::parse("-3").unwrap(), Json::Float(-3.0));
        assert_eq!(Json::parse("2.5e2").unwrap(), Json::Float(250.0));
        assert_eq!(Json::parse("7").unwrap(), Json::UInt(7));
    }
}
