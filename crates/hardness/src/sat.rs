//! 1-in-3SAT: formulas, brute force, enumeration.
//!
//! 1-in-3SAT (Schaefer): given clauses of three literals, is there an
//! assignment making **exactly one** literal per clause true? Strongly
//! NP-hard; the source of every reduction in §4.1–4.2.

/// A literal: variable index + polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit {
    /// Variable index `0..n_vars`.
    pub var: usize,
    /// `true` for `V`, `false` for `¬V`.
    pub positive: bool,
}

impl Lit {
    /// Positive literal.
    pub fn pos(var: usize) -> Self {
        Lit {
            var,
            positive: true,
        }
    }
    /// Negative literal.
    pub fn neg(var: usize) -> Self {
        Lit {
            var,
            positive: false,
        }
    }
    /// Truth value under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

/// A 1-in-3SAT formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Formula {
    /// Number of variables.
    pub n_vars: usize,
    /// Clauses of exactly three literals.
    pub clauses: Vec<[Lit; 3]>,
}

impl Formula {
    /// New formula; panics if a literal references a missing variable.
    pub fn new(n_vars: usize, clauses: Vec<[Lit; 3]>) -> Self {
        for c in &clauses {
            for l in c {
                assert!(l.var < n_vars, "literal references variable {}", l.var);
            }
        }
        Formula { n_vars, clauses }
    }

    /// Number of clauses (`m`).
    pub fn n_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Does `assignment` make exactly one literal true in every clause?
    pub fn satisfied_1in3(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.n_vars);
        self.clauses.iter().all(|c| {
            c.iter().filter(|l| l.eval(assignment)).count() == 1
        })
    }

    /// Does `assignment` make at least one literal true per clause
    /// (ordinary 3SAT satisfaction — used by the Theorem 4.4 chain)?
    pub fn satisfied_3sat(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.n_vars);
        self.clauses.iter().all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    /// Brute-force 1-in-3 solver (use for `n_vars ≲ 24`).
    pub fn solve_1in3(&self) -> Option<Vec<bool>> {
        self.enumerate(|f, a| f.satisfied_1in3(a))
    }

    /// Brute-force 3SAT solver.
    pub fn solve_3sat(&self) -> Option<Vec<bool>> {
        self.enumerate(|f, a| f.satisfied_3sat(a))
    }

    fn enumerate(&self, ok: impl Fn(&Formula, &[bool]) -> bool) -> Option<Vec<bool>> {
        assert!(self.n_vars < 26, "brute force limited to < 26 variables");
        for mask in 0u32..(1u32 << self.n_vars) {
            let a: Vec<bool> = (0..self.n_vars).map(|i| mask >> i & 1 == 1).collect();
            if ok(self, &a) {
                return Some(a);
            }
        }
        None
    }

    /// The paper's running example: `(V1 ∨ ¬V2 ∨ V3) ∧ (¬V1 ∨ V2 ∨ V3)`
    /// (Figure 9), 1-in-3 satisfiable with `V1 = V2 = TRUE, V3 = FALSE`.
    pub fn paper_example() -> Formula {
        Formula::new(
            3,
            vec![
                [Lit::pos(0), Lit::neg(1), Lit::pos(2)],
                [Lit::neg(0), Lit::pos(1), Lit::pos(2)],
            ],
        )
    }

    /// Exhaustively enumerates all formulas with `n_vars` variables and
    /// `m` clauses over *positive* literal index combinations with all
    /// polarity patterns (small universes for exhaustive lemma checks).
    pub fn enumerate_all(n_vars: usize, m: usize) -> Vec<Formula> {
        let mut triples = Vec::new();
        for a in 0..n_vars {
            for b in (a + 1)..n_vars {
                for c in (b + 1)..n_vars {
                    for pol in 0..8u8 {
                        triples.push([
                            Lit {
                                var: a,
                                positive: pol & 1 != 0,
                            },
                            Lit {
                                var: b,
                                positive: pol & 2 != 0,
                            },
                            Lit {
                                var: c,
                                positive: pol & 4 != 0,
                            },
                        ]);
                    }
                }
            }
        }
        let mut out = Vec::new();
        let mut idx = vec![0usize; m];
        loop {
            out.push(Formula::new(
                n_vars,
                idx.iter().map(|&i| triples[i]).collect(),
            ));
            // next multi-index (combinations with repetition)
            let mut k = m;
            loop {
                if k == 0 {
                    return out;
                }
                k -= 1;
                if idx[k] + 1 < triples.len() {
                    idx[k] += 1;
                    for j in (k + 1)..m {
                        idx[j] = idx[k];
                    }
                    break;
                }
            }
        }
    }

    /// Random formula with the given shape.
    pub fn random<R: rand::Rng>(rng: &mut R, n_vars: usize, m: usize) -> Formula {
        assert!(n_vars >= 3);
        let clauses = (0..m)
            .map(|_| {
                let mut vars = [0usize; 3];
                vars[0] = rng.random_range(0..n_vars);
                loop {
                    vars[1] = rng.random_range(0..n_vars);
                    if vars[1] != vars[0] {
                        break;
                    }
                }
                loop {
                    vars[2] = rng.random_range(0..n_vars);
                    if vars[2] != vars[0] && vars[2] != vars[1] {
                        break;
                    }
                }
                [
                    Lit {
                        var: vars[0],
                        positive: rng.random_bool(0.5),
                    },
                    Lit {
                        var: vars[1],
                        positive: rng.random_bool(0.5),
                    },
                    Lit {
                        var: vars[2],
                        positive: rng.random_bool(0.5),
                    },
                ]
            })
            .collect();
        Formula::new(n_vars, clauses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_satisfiable_as_stated() {
        let f = Formula::paper_example();
        // Figure 9 caption: V1 = TRUE, V2 = TRUE, V3 = FALSE works.
        assert!(f.satisfied_1in3(&[true, true, false]));
        let sol = f.solve_1in3().unwrap();
        assert!(f.satisfied_1in3(&sol));
    }

    #[test]
    fn exactly_one_vs_at_least_one() {
        let f = Formula::new(3, vec![[Lit::pos(0), Lit::pos(1), Lit::pos(2)]]);
        assert!(f.satisfied_3sat(&[true, true, false]));
        assert!(!f.satisfied_1in3(&[true, true, false]));
        assert!(f.satisfied_1in3(&[true, false, false]));
    }

    #[test]
    fn unsatisfiable_instance() {
        // x ∨ x̄-type trap: with clauses forcing contradictory patterns.
        // (a ∨ b ∨ c) three times with all-positive and the requirement
        // of exactly one true is satisfiable; build a real unsat case:
        // (a∨b∨c), (¬a∨¬b∨c), (a∨¬b∨¬c), (¬a∨b∨¬c) has no 1-in-3 model.
        let f = Formula::new(
            3,
            vec![
                [Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                [Lit::neg(0), Lit::neg(1), Lit::pos(2)],
                [Lit::pos(0), Lit::neg(1), Lit::neg(2)],
                [Lit::neg(0), Lit::pos(1), Lit::neg(2)],
            ],
        );
        assert!(f.solve_1in3().is_none());
    }

    #[test]
    fn enumerate_all_counts() {
        // 3 vars: C(3,3)=1 index combo × 8 polarities = 8 triples;
        // m=1 -> 8 formulas; m=2 -> multichoose(8,2) = 36.
        assert_eq!(Formula::enumerate_all(3, 1).len(), 8);
        assert_eq!(Formula::enumerate_all(3, 2).len(), 36);
    }

    #[test]
    fn random_formulas_valid() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let f = Formula::random(&mut rng, 5, 4);
            assert_eq!(f.n_clauses(), 4);
            for c in &f.clauses {
                assert!(c[0].var != c[1].var && c[1].var != c[2].var);
            }
        }
    }
}
