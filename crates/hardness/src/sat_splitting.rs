//! §4.2 (Figures 12–14): hardness with recursive-binary and k-way
//! splitting duration functions.
//!
//! Theorem 4.1 uses bespoke `{⟨0,1⟩,⟨1,0⟩}` steps; §4.2 shows the
//! problem stays strongly NP-hard when every improvable duration must
//! come from an *actual reducer*, i.e. Eq. 2/3. The two properties that
//! make the gadgets work:
//!
//! * **1 unit is useless** (`t(1) = t(0)` in both families) — this
//!   replaces the atomicity of the two-tuple edges: allocations are
//!   effectively "2 units or nothing";
//! * with 2 units a base-`d` job drops from `d` to `⌈d/2⌉ + 2` — a gap
//!   of `d/2 − 2` that the wiring turns into a makespan signal.
//!
//! This module reconstructs the §4.2 reduction on the same topology as
//! our Theorem 4.1 gadgets, with every unit edge replaced by a base-8
//! splitting job (covered: 6, uncovered: 8), literal taps delayed by
//! constant chains (the paper's "chains of 4x nodes"), and constant
//! padding so the makespan target discriminates exactly (see DESIGN.md
//! for the constant calibration). Budget `2n + 4m`, target 26.
//!
//! The [`composite_node`] helper is the literal Figure 12 gadget:
//! `k + 2` cells whose work totals `k + 2` serially and `k/2 + 4` with
//! two units of resource under either splitting family.

use crate::sat::{Formula, Lit};
use rtt_core::instance::{Activity, ArcInstance};
use rtt_core::{Duration, Resource, Time};
use rtt_dag::{Dag, NodeId};

/// Which splitting family to build the gadgets from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitFamily {
    /// Eq. 2 (k-way splitting).
    KWay,
    /// Eq. 3 (recursive binary splitting).
    RecursiveBinary,
}

impl SplitFamily {
    /// The duration function of a base-`d` job in this family.
    pub fn duration(self, d: Time) -> Duration {
        match self {
            SplitFamily::KWay => Duration::kway(d),
            SplitFamily::RecursiveBinary => Duration::recursive_binary(d),
        }
    }
}

/// Base duration of every splitting job in the gadgets.
pub const BASE: Time = 8;
/// Covered duration: `⌈8/2⌉ + 2`.
pub const COVERED: Time = 6;
/// Makespan target of the reduction.
pub const TARGET: Time = 26;

/// The §4.2 reduction output.
#[derive(Debug, Clone)]
pub struct SatSplittingReduction {
    /// The reduced instance (all improvable arcs from one family).
    pub arc: ArcInstance,
    /// Budget `2n + 4m`.
    pub budget: Resource,
    /// Makespan target.
    pub target: Time,
    /// Literal tap nodes per variable: `(true tap, false tap)` — the
    /// ends of the delay chains (`V(5)`, `V(6)` in Figure 13).
    pub taps: Vec<(NodeId, NodeId)>,
    /// Pattern vertices per clause (`C(5..7)` analogues).
    pub patterns: Vec<[NodeId; 3]>,
}

fn split_edge(fam: SplitFamily) -> Activity {
    Activity::new(fam.duration(BASE))
}

/// Builds the reduction from `f` with the chosen family.
pub fn reduce(f: &Formula, fam: SplitFamily) -> SatSplittingReduction {
    let mut g: Dag<(), Activity> = Dag::new();
    let s = g.add_node(());
    let t = g.add_node(());

    // ---- variable gadgets (Figure 13 analogue)
    let mut taps = Vec::with_capacity(f.n_vars);
    for _ in 0..f.n_vars {
        let v1 = g.add_node(());
        let v2 = g.add_node(()); // TRUE branch (composite V(2))
        let v3 = g.add_node(()); // FALSE branch (composite V(3))
        let v5 = g.add_node(()); // true tap (end of delay chain)
        let v6 = g.add_node(()); // false tap
        let v4 = g.add_node(()); // merge
        let v7 = g.add_node(()); // tail 1
        let v8 = g.add_node(()); // tail 2
        g.add_edge(s, v1, Activity::dummy()).unwrap();
        g.add_edge(v1, v2, split_edge(fam)).unwrap();
        g.add_edge(v1, v3, split_edge(fam)).unwrap();
        g.add_edge(v2, v5, Activity::new(Duration::constant(COVERED)))
            .unwrap();
        g.add_edge(v3, v6, Activity::new(Duration::constant(COVERED)))
            .unwrap();
        g.add_edge(v5, v4, Activity::dummy()).unwrap();
        g.add_edge(v6, v4, Activity::dummy()).unwrap();
        g.add_edge(v4, v7, split_edge(fam)).unwrap();
        g.add_edge(v7, v8, split_edge(fam)).unwrap();
        g.add_edge(v8, t, Activity::dummy()).unwrap();
        taps.push((v5, v6));
    }

    let lit_tap = |taps: &[(NodeId, NodeId)], l: Lit| {
        if l.positive {
            taps[l.var].0
        } else {
            taps[l.var].1
        }
    };

    // ---- clause gadgets (Figure 14 analogue)
    let mut patterns = Vec::with_capacity(f.n_clauses());
    for clause in &f.clauses {
        let c1 = g.add_node(());
        let c2 = g.add_node(());
        let c3 = g.add_node(());
        let c4 = g.add_node(());
        g.add_edge(s, c1, Activity::dummy()).unwrap();
        g.add_edge(c1, c2, split_edge(fam)).unwrap();
        g.add_edge(c2, c4, split_edge(fam)).unwrap();
        g.add_edge(c1, c3, split_edge(fam)).unwrap();
        g.add_edge(c3, c4, split_edge(fam)).unwrap();
        let mut pats = [NodeId(0); 3];
        for p in 0..3 {
            let pv = g.add_node(());
            let pe = g.add_node(());
            g.add_edge(c4, pv, Activity::dummy()).unwrap();
            for (r, l) in clause.iter().enumerate() {
                let want = if r == p {
                    *l
                } else {
                    Lit {
                        var: l.var,
                        positive: !l.positive,
                    }
                };
                g.add_edge(lit_tap(&taps, want), pv, Activity::dummy())
                    .unwrap();
            }
            g.add_edge(pv, pe, split_edge(fam)).unwrap();
            g.add_edge(pe, t, Activity::new(Duration::constant(COVERED)))
                .unwrap();
            pats[p] = pv;
        }
        patterns.push(pats);
    }

    let arc = ArcInstance::new(g).expect("valid two-terminal DAG");
    SatSplittingReduction {
        arc,
        budget: (2 * f.n_vars + 4 * f.n_clauses()) as Resource,
        target: TARGET,
        taps,
        patterns,
    }
}

/// The Figure 12 **composite node** of order `k` as an
/// activity-on-node DAG: an entry cell (1 write), `k` middle cells
/// (1 write each, in parallel), and a collector cell (`k` writes).
/// Returns the DAG and the collector's node id.
pub fn composite_node(k: usize) -> (Dag<(), ()>, NodeId) {
    let mut g: Dag<(), ()> = Dag::new();
    let entry0 = g.add_node(()); // external writer
    let v1 = g.add_node(());
    g.add_edge(entry0, v1, ()).unwrap();
    let collector = g.add_node(());
    for _ in 0..k {
        let mid = g.add_node(());
        g.add_edge(v1, mid, ()).unwrap();
        g.add_edge(mid, collector, ()).unwrap();
    }
    (g, collector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_core::exact::decide_feasible;
    use rtt_core::solution::validate;
    use rtt_duration::expand::{expand_reducers, ReducerVariant};

    #[test]
    fn covered_and_uncovered_values() {
        for fam in [SplitFamily::KWay, SplitFamily::RecursiveBinary] {
            let d = fam.duration(BASE);
            assert_eq!(d.time(0), 8, "{fam:?}");
            assert_eq!(d.time(1), 8, "one unit is useless ({fam:?})");
            assert_eq!(d.time(2), COVERED, "{fam:?}");
        }
    }

    #[test]
    fn composite_node_times_match_section_4_2() {
        // "a composite node of order k takes (k+2) units of time...
        //  using 2 units of resource all activities can be completed in
        //  (k/2 + 4) time"
        let k = 8usize;
        let (g, collector) = composite_node(k);
        let base = rtt_dag::longest_path_nodes(&g, |v| g.in_degree(v) as u64)
            .unwrap()
            .weight;
        assert_eq!(base, (k + 2) as u64);
        // height-1 reducer on the collector = 2 units of extra space
        let mut heights = vec![0u32; g.node_count()];
        heights[collector.index()] = 1;
        let exp = expand_reducers(&g, &heights, ReducerVariant::Sibling);
        assert_eq!(exp.extra_space, 2);
        assert_eq!(exp.makespan(), (k / 2 + 4) as u64);
    }

    #[test]
    fn paper_example_equivalence_both_families() {
        let f = Formula::paper_example();
        for fam in [SplitFamily::KWay, SplitFamily::RecursiveBinary] {
            let red = reduce(&f, fam);
            assert_eq!(red.budget, 2 * 3 + 4 * 2);
            let sol = decide_feasible(&red.arc, red.budget, red.target)
                .expect("satisfiable ⇒ target reachable");
            validate(&red.arc, &sol).unwrap();
            assert!(sol.budget_used <= red.budget);
            // short one pair of units -> infeasible
            assert!(decide_feasible(&red.arc, red.budget - 2, red.target).is_none());
        }
    }

    #[test]
    fn unsatisfiable_formula_exceeds_target() {
        // (V1∨V1∨V2) ∧ (V1∨V1∨¬V2) has no 1-in-3 assignment: V1 = T
        // makes two literals true, V1 = F forces V2 = T and V2 = F.
        let f = Formula::new(
            2,
            vec![
                [Lit::pos(0), Lit::pos(0), Lit::pos(1)],
                [Lit::pos(0), Lit::pos(0), Lit::neg(1)],
            ],
        );
        assert!(f.solve_1in3().is_none());
        let red = reduce(&f, SplitFamily::RecursiveBinary);
        assert!(
            decide_feasible(&red.arc, red.budget, red.target).is_none(),
            "Lemma 4.5: unsat ⇒ makespan > target"
        );
    }

    /// The 3-variable, 4-clause unsatisfiable instance: the infeasibility
    /// proof explores an exponential search tree on the full-size §4.2
    /// gadget — run with `cargo test -- --ignored`.
    #[test]
    #[ignore = "heavy: minutes of exponential search"]
    fn unsatisfiable_formula_exceeds_target_heavy() {
        let f = Formula::new(
            3,
            vec![
                [Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                [Lit::neg(0), Lit::neg(1), Lit::pos(2)],
                [Lit::pos(0), Lit::neg(1), Lit::neg(2)],
                [Lit::neg(0), Lit::pos(1), Lit::neg(2)],
            ],
        );
        assert!(f.solve_1in3().is_none());
        let red = reduce(&f, SplitFamily::RecursiveBinary);
        assert!(
            decide_feasible(&red.arc, red.budget, red.target).is_none(),
            "Lemma 4.5: unsat ⇒ makespan > target"
        );
        // but slightly above the target it becomes feasible
        assert!(decide_feasible(&red.arc, red.budget, red.target + 2).is_some());
    }

    #[test]
    fn equivalence_on_exhaustive_one_clause_universe() {
        for f in Formula::enumerate_all(3, 1) {
            let red = reduce(&f, SplitFamily::KWay);
            let sat = f.solve_1in3().is_some();
            let feasible = decide_feasible(&red.arc, red.budget, red.target).is_some();
            assert_eq!(sat, feasible, "Lemma 4.5 equivalence for {f:?}");
        }
    }

    /// The Table 3 analogue: pattern-vertex finish times over all 8
    /// assignments show the same early/late structure (one early iff
    /// exactly one literal is true).
    #[test]
    fn table3_pattern_structure() {
        let f = Formula::new(3, vec![[Lit::pos(0), Lit::pos(1), Lit::pos(2)]]);
        let red = reduce(&f, SplitFamily::RecursiveBinary);
        let d = red.arc.dag();
        for mask in 0..8u32 {
            let assignment = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
            // route honestly: 2 units per var along the truth branch,
            // 2+2 through the clause diamond (stopping the exit choice).
            let mut flows = vec![0u64; d.edge_count()];
            let route = |path: &[NodeId], amount: u64, flows: &mut Vec<u64>| {
                for w in path.windows(2) {
                    let e = d
                        .out_edges(w[0])
                        .iter()
                        .copied()
                        .find(|&e| d.dst(e) == w[1])
                        .unwrap();
                    flows[e.index()] += amount;
                }
            };
            // variable nodes were added in a fixed order: v1 at 2+8i.
            for (i, &val) in assignment.iter().enumerate() {
                let v1 = NodeId(2 + 8 * i as u32);
                let branch = NodeId(v1.0 + if val { 1 } else { 2 });
                let tapn = NodeId(v1.0 + if val { 3 } else { 4 });
                let v4 = NodeId(v1.0 + 5);
                let v7 = NodeId(v1.0 + 6);
                let v8 = NodeId(v1.0 + 7);
                route(
                    &[red.arc.source(), v1, branch, tapn, v4, v7, v8, red.arc.sink()],
                    2,
                    &mut flows,
                );
            }
            let times =
                rtt_dag::paths::event_times(d, |e| red.arc.arc_time(e, flows[e.index()]))
                    .unwrap();
            // taps: chosen 12, unchosen 14
            for (i, &val) in assignment.iter().enumerate() {
                let (tt, ft) = red.taps[i];
                let (chosen, unchosen) = if val { (tt, ft) } else { (ft, tt) };
                assert_eq!(times[chosen.index()], 12);
                assert_eq!(times[unchosen.index()], 14);
            }
            // Pattern-vertex tap contribution: pattern p is "early" iff
            // all three of its wanted taps are the chosen (time-12) ones,
            // i.e. iff literal p is the unique true literal. This is the
            // Table 3 structure: one early pattern iff exactly one true.
            let true_count = assignment.iter().filter(|&&b| b).count();
            let early_patterns = (0..3)
                .filter(|&p| {
                    (0..3).all(|r| {
                        // wanted polarity for position r in pattern p is
                        // "true" iff r == p; the tap is early iff the
                        // assignment agrees.
                        (r == p) == assignment[r]
                    })
                })
                .count();
            assert_eq!(
                early_patterns,
                usize::from(true_count == 1),
                "exactly-one-true ⟺ exactly one early pattern ({assignment:?})"
            );
        }
    }
}
