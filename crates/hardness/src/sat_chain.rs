//! Theorem 4.4 (Figures 10–11): minimum-resource is NP-hard to
//! approximate within any factor below 3/2.
//!
//! Chained reconstruction (the paper describes Figures 10–11 only in
//! prose; this wiring realizes the same 2-vs-3 resource gap from
//! 1-in-3SAT — see DESIGN.md for the correspondence):
//!
//! * a **variable chain**: gadget `i` has entry `e_i` and two branch
//!   nodes `T_i`/`F_i` behind `{⟨0,1⟩,⟨1,0⟩}` edges; one unit walks the
//!   chain choosing a branch per variable (the assignment). Nominal
//!   event times: `e_i = i−1`, chosen branch node `i−1`, unchosen `i`
//!   — a true literal's node is reached **one tick sooner**, exactly
//!   the "is reached 1 unit of time sooner (from the variable gadget),
//!   to compensate" of the paper's sketch;
//! * a **spine** `s → t_var` with `{⟨0,M⟩,⟨1,n⟩}`: a second unit is
//!   forced through it, which also prevents two units from walking the
//!   variable chain and faking both polarities;
//! * a **clause chain**: clause `c` has entry `u_c` (nominal time
//!   `N_c = n + c − 1`), three pattern vertices (in-edges from the
//!   exactly-one-true pattern's literal nodes, with constant durations
//!   `N_c − (i−1)` so matched patterns sit at `N_c` and unmatched at
//!   `N_c + 1`), and `{⟨0,1⟩,⟨1,0⟩}` exit edges into `w_c`. Both units
//!   traverse every clause, covering two exits; a clause with exactly
//!   one true literal has exactly one on-time pattern, so its two late
//!   patterns are exactly covered and `w_c = N_c + 1` stays nominal.
//!   Any other clause has three late patterns and slips the sink.
//!
//! Result: makespan target `A = n + m` is reachable with **2** units
//! iff the formula is 1-in-3 satisfiable, and always with **3** — so a
//! polynomial (3/2 − ε)-approximation would decide 1-in-3SAT.

use crate::sat::{Formula, Lit};
use rtt_core::instance::{Activity, ArcInstance};
use rtt_core::{Duration, Resource, Time};
use rtt_dag::{Dag, NodeId};

/// The Theorem 4.4 chained reduction.
#[derive(Debug, Clone)]
pub struct SatChainReduction {
    /// The reduced instance.
    pub arc: ArcInstance,
    /// Makespan target `A = n + m`.
    pub target: Time,
    /// Resource needed when satisfiable (2).
    pub sat_resource: Resource,
    /// Resource sufficient always (3).
    pub fallback_resource: Resource,
    /// `(T_i, F_i)` branch nodes per variable.
    pub branches: Vec<(NodeId, NodeId)>,
    /// Pattern vertices per clause.
    pub patterns: Vec<[NodeId; 3]>,
}

fn unit_edge() -> Activity {
    Activity::new(Duration::two_point(1, 1, 0))
}

/// Builds the chained reduction. Requires at least one clause.
pub fn reduce(f: &Formula) -> SatChainReduction {
    assert!(f.n_clauses() >= 1, "the chain needs at least one clause");
    let n = f.n_vars as u64;
    let m = f.n_clauses() as u64;
    let big = 10 * (n + m + 5);

    let mut g: Dag<(), Activity> = Dag::new();
    let s = g.add_node(());

    // ---- variable chain
    let mut branches = Vec::with_capacity(f.n_vars);
    let mut entry = g.add_node(());
    g.add_edge(s, entry, Activity::dummy()).unwrap();
    for _ in 0..f.n_vars {
        let t_node = g.add_node(());
        let f_node = g.add_node(());
        let next = g.add_node(());
        g.add_edge(entry, t_node, unit_edge()).unwrap();
        g.add_edge(entry, f_node, unit_edge()).unwrap();
        g.add_edge(t_node, next, Activity::dummy()).unwrap();
        g.add_edge(f_node, next, Activity::dummy()).unwrap();
        branches.push((t_node, f_node));
        entry = next;
    }
    let t_var = entry; // nominal event time n

    // ---- spine: forces the second unit, arrives at the same time
    g.add_edge(s, t_var, Activity::new(Duration::two_point(big, 1, n)))
        .unwrap();

    // literal node: where the "literal is true" signal lives
    let lit_node = |branches: &[(NodeId, NodeId)], l: Lit| {
        if l.positive {
            branches[l.var].0
        } else {
            branches[l.var].1
        }
    };

    // ---- clause chain
    let mut patterns = Vec::with_capacity(f.n_clauses());
    let mut u = t_var;
    for (c_idx, clause) in f.clauses.iter().enumerate() {
        let n_c = n + c_idx as u64; // nominal event time of u
        let w = g.add_node(());
        let mut pats = [NodeId(0); 3];
        for p in 0..3 {
            let pv = g.add_node(());
            g.add_edge(u, pv, Activity::dummy()).unwrap();
            // pattern p: literal p true, the others false
            for (r, l) in clause.iter().enumerate() {
                let want = if r == p { *l } else { Lit { var: l.var, positive: !l.positive } };
                let node = lit_node(&branches, want);
                let var_nominal = want.var as u64; // chosen node time = i-1
                let delta = n_c - var_nominal;
                g.add_edge(node, pv, Activity::new(Duration::constant(delta)))
                    .unwrap();
            }
            g.add_edge(pv, w, unit_edge()).unwrap();
            pats[p] = pv;
        }
        patterns.push(pats);
        u = w;
    }
    let t = g.add_node(());
    g.add_edge(u, t, Activity::dummy()).unwrap();

    let arc = ArcInstance::new(g).expect("valid two-terminal DAG");
    SatChainReduction {
        arc,
        target: n + m,
        sat_resource: 2,
        fallback_resource: 3,
        branches,
        patterns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_core::exact::{decide_feasible, solve_exact_min_resource};
    use rtt_core::solution::validate;

    #[test]
    fn paper_example_needs_exactly_2() {
        let f = Formula::paper_example();
        let red = reduce(&f);
        let sol = decide_feasible(&red.arc, red.sat_resource, red.target)
            .expect("satisfiable ⇒ 2 units reach the target");
        validate(&red.arc, &sol).unwrap();
        assert!(sol.budget_used <= 2);
        // and 1 unit is never enough (the spine alone eats it)
        assert!(decide_feasible(&red.arc, 1, red.target).is_none());
    }

    #[test]
    fn unsatisfiable_needs_3() {
        let f = Formula::new(
            3,
            vec![
                [Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                [Lit::neg(0), Lit::neg(1), Lit::pos(2)],
                [Lit::pos(0), Lit::neg(1), Lit::neg(2)],
                [Lit::neg(0), Lit::pos(1), Lit::neg(2)],
            ],
        );
        assert!(f.solve_1in3().is_none());
        let red = reduce(&f);
        assert!(
            decide_feasible(&red.arc, 2, red.target).is_none(),
            "unsat ⇒ 2 units cannot reach the target"
        );
        let sol = decide_feasible(&red.arc, 3, red.target)
            .expect("3 units always suffice");
        validate(&red.arc, &sol).unwrap();
    }

    #[test]
    fn min_resource_gap_is_exactly_3_halves() {
        // the Theorem 4.4 statement, measured: OPT ∈ {2, 3} according to
        // satisfiability, a multiplicative gap of 3/2.
        for f in Formula::enumerate_all(3, 1) {
            let red = reduce(&f);
            let (opt, sol) = solve_exact_min_resource(&red.arc, red.target)
                .expect("target always reachable with 3 units");
            validate(&red.arc, &sol).unwrap();
            let want = if f.solve_1in3().is_some() { 2 } else { 3 };
            assert_eq!(opt, want, "formula {f:?}");
        }
    }

    #[test]
    fn nominal_timings() {
        let f = Formula::paper_example();
        let red = reduce(&f);
        assert_eq!(red.target, 3 + 2);
        // the base makespan (no resources) blows up via the spine M
        assert!(red.arc.base_makespan() >= 10 * (3 + 2 + 5));
    }
}
