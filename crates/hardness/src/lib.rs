//! # rtt-hardness — every reduction of §4 and Appendix A, executable
//!
//! The paper's hardness results are constructions; this crate builds
//! them as actual [`rtt_core::ArcInstance`]s so each lemma becomes an
//! executable experiment (gadget instance ⟺ source-problem instance,
//! checked with the exact solvers on exhaustive small universes):
//!
//! * [`sat`] — 1-in-3SAT formulas, brute-force solver, generators;
//! * [`sat_general`] — Theorem 4.1 / Lemma 4.2 (Figures 8–9): 1-in-3SAT
//!   ⟺ makespan 1 with budget `n + 2m`, general non-increasing
//!   durations; also powers the Theorem 4.3 (factor-2 makespan
//!   inapproximability) experiment and regenerates **Table 2**;
//! * [`sat_chain`] — Theorem 4.4 (Figures 10–11): the chained
//!   construction showing minimum-resource is NP-hard to approximate
//!   below 3/2 (2 units ⟺ satisfiable, else 3);
//! * [`sat_splitting`] — §4.2 (Figures 12–14): hardness persists when
//!   durations are restricted to k-way / recursive-binary splitting;
//!   composite nodes, budget `2n + 4m`, regenerates the **Table 3**
//!   pattern;
//! * [`partition`] — Theorem 4.6 (Figures 15–16): weak NP-hardness on
//!   DAGs of bounded treewidth, with an explicit verified tree
//!   decomposition;
//! * [`matching3d`] — Appendix A (Figures 17–18): numerical
//!   3-dimensional matching via bipartite matcher gadgets
//!   (makespan `2M + T` with budget `n²`).
//!
//! Where the paper's figures are not reproducible from the text alone
//! (Figures 10–14 are described only in prose), the constructions here
//! are *reconstructions*: same source problem, same budget/makespan
//! gaps, wiring chosen so the lemmas hold — and verified to hold by the
//! tests, not by eye. Divergences are documented in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matching3d;
pub mod partition;
pub mod sat;
pub mod sat_chain;
pub mod sat_general;
pub mod sat_splitting;

pub use sat::{Formula, Lit};
