//! Appendix A (Figures 17–18): reduction from **numerical
//! 3-dimensional matching** via bipartite matcher gadgets.
//!
//! Given `A, B, C` of `n` positive integers each with
//! `Σ(A∪B∪C) = nT`, decide whether they partition into `n` triples
//! `(a, b, c)` of sum exactly `T`. The reduced DAG routes `n` units of
//! resource through each of `n` parallel lanes:
//!
//! ```text
//! s ──⟨n, a_i⟩──► [bipartite matcher] ──⟨n, b_j⟩──► [matcher] ──⟨n, c_k⟩──► t
//! ```
//!
//! A **bipartite matcher** (Figure 17) forces a perfect matching
//! between its `n` inputs and `n` outputs: input `x_i` fans a unit to
//! each `y^j_i`; exactly one `y^j_i` per row forwards its unit to `y_i`
//! (demanded by `(y_i, z_i) = {⟨0,∞⟩,⟨1,0⟩}`), which leaves that
//! column's `(y^j_i, z'_j) = {⟨0,M⟩,⟨1,0⟩}` uncovered — stamping
//! `EST(x_i) + M` onto output `z_j` — while the other `n−1` rows'
//! units cover `z'_j`'s demand `(z'_j, z_j) = {⟨0,∞⟩,⟨n−1,0⟩}`.
//!
//! The sink's earliest start is `2M + max_matched-triple(a + b + c)`;
//! with budget `n²` the target `2M + T` is reachable **iff** the
//! numerical 3D matching exists (Lemma A.1).

use rtt_core::instance::{Activity, ArcInstance};
use rtt_core::{Duration, Resource, Time, INF};
use rtt_dag::{Dag, NodeId};

/// A numerical 3-dimensional matching instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Numerical3dm {
    /// First coordinate values.
    pub a: Vec<u64>,
    /// Second coordinate values.
    pub b: Vec<u64>,
    /// Third coordinate values.
    pub c: Vec<u64>,
}

impl Numerical3dm {
    /// New instance; all three lists must have the same length.
    pub fn new(a: Vec<u64>, b: Vec<u64>, c: Vec<u64>) -> Self {
        assert_eq!(a.len(), b.len());
        assert_eq!(b.len(), c.len());
        assert!(!a.is_empty());
        Numerical3dm { a, b, c }
    }

    /// Number of triples `n`.
    pub fn n(&self) -> usize {
        self.a.len()
    }

    /// The per-triple target `T` if the totals divide evenly.
    pub fn triple_target(&self) -> Option<u64> {
        let total: u64 = self.a.iter().chain(&self.b).chain(&self.c).sum();
        total.is_multiple_of(self.n() as u64).then(|| total / self.n() as u64)
    }

    /// Brute-force: permutations `σ, τ` with
    /// `a_i + b_σ(i) + c_τ(i) = T` for all `i` (n ≤ 6).
    pub fn solve(&self) -> Option<(Vec<usize>, Vec<usize>)> {
        let t = self.triple_target()?;
        let n = self.n();
        assert!(n <= 6, "brute force limited to n ≤ 6");
        let mut sigma: Vec<usize> = (0..n).collect();
        let mut tau: Vec<usize> = (0..n).collect();
        // iterate all permutation pairs via Heap's-style recursion
        fn perms(v: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
            if k == v.len() {
                out.push(v.clone());
                return;
            }
            for i in k..v.len() {
                v.swap(k, i);
                perms(v, k + 1, out);
                v.swap(k, i);
            }
        }
        let mut all_sigma = Vec::new();
        perms(&mut sigma, 0, &mut all_sigma);
        let mut all_tau = Vec::new();
        perms(&mut tau, 0, &mut all_tau);
        for sg in &all_sigma {
            for tu in &all_tau {
                if (0..n).all(|i| self.a[i] + self.b[sg[i]] + self.c[tu[i]] == t) {
                    return Some((sg.clone(), tu.clone()));
                }
            }
        }
        None
    }
}

/// Handles into one bipartite matcher gadget.
#[derive(Debug, Clone)]
pub struct Matcher {
    /// Input vertices `x_i`.
    pub inputs: Vec<NodeId>,
    /// Output vertices `z_j`.
    pub outputs: Vec<NodeId>,
}

/// Builds a bipartite matcher between `inputs` and fresh outputs.
/// `m_big` is the timing constant `M`.
fn build_matcher(
    g: &mut Dag<(), Activity>,
    inputs: &[NodeId],
    m_big: Time,
) -> Matcher {
    let n = inputs.len();
    // y^j_i grid, y_i row collectors, z'_j column collectors, z_j outputs
    let y_grid: Vec<Vec<NodeId>> = (0..n)
        .map(|_| (0..n).map(|_| g.add_node(())).collect())
        .collect();
    let y_row: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    let z_col: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    let z_out: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    for i in 0..n {
        for j in 0..n {
            // one unit per grid cell
            g.add_edge(
                inputs[i],
                y_grid[i][j],
                Activity::new(Duration::two_point(INF, 1, 0)),
            )
            .unwrap();
            // forward to the row collector (the "matched" route)
            g.add_edge(y_grid[i][j], y_row[i], Activity::dummy()).unwrap();
            // or cover the column demand; skipping costs M
            g.add_edge(
                y_grid[i][j],
                z_col[j],
                Activity::new(Duration::two_point(m_big, 1, 0)),
            )
            .unwrap();
        }
    }
    for i in 0..n {
        // the row collector's unit must reach the output row-wise
        g.add_edge(
            y_row[i],
            z_out[i],
            Activity::new(Duration::two_point(INF, 1, 0)),
        )
        .unwrap();
    }
    for j in 0..n {
        // column collectors demand n−1 units
        let need = (n - 1) as Resource;
        let act = if need == 0 {
            Activity::dummy()
        } else {
            Activity::new(Duration::two_point(INF, need, 0))
        };
        g.add_edge(z_col[j], z_out[j], act).unwrap();
    }
    Matcher {
        inputs: inputs.to_vec(),
        outputs: z_out,
    }
}

/// The Appendix A reduction output.
#[derive(Debug, Clone)]
pub struct Matching3dReduction {
    /// The reduced instance.
    pub arc: ArcInstance,
    /// Budget `n²`.
    pub budget: Resource,
    /// Makespan target `2M + T`.
    pub target: Time,
    /// The timing constant `M`.
    pub m_big: Time,
}

/// Builds the reduction; `None` if the totals do not divide (trivially
/// unsolvable — no DAG needed).
pub fn reduce(inst: &Numerical3dm) -> Option<Matching3dReduction> {
    let t_val = inst.triple_target()?;
    let n = inst.n();
    let m_big: Time = inst.a.iter().max().unwrap()
        + inst.b.iter().max().unwrap()
        + inst.c.iter().max().unwrap()
        + 1;
    let mut g: Dag<(), Activity> = Dag::new();
    let s = g.add_node(());

    // a-edges feed matcher 1 inputs
    let a_nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    for (i, &an) in a_nodes.iter().enumerate() {
        g.add_edge(
            s,
            an,
            Activity::new(Duration::two_point(INF, n as Resource, inst.a[i])),
        )
        .unwrap();
    }
    let m1 = build_matcher(&mut g, &a_nodes, m_big);

    // b-edges between the matchers
    let b_nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    for (j, &bn) in b_nodes.iter().enumerate() {
        g.add_edge(
            m1.outputs[j],
            bn,
            Activity::new(Duration::two_point(INF, n as Resource, inst.b[j])),
        )
        .unwrap();
    }
    let m2 = build_matcher(&mut g, &b_nodes, m_big);

    // c-edges to the sink
    let t_node = g.add_node(());
    for (k, &out) in m2.outputs.iter().enumerate() {
        g.add_edge(
            out,
            t_node,
            Activity::new(Duration::two_point(INF, n as Resource, inst.c[k])),
        )
        .unwrap();
    }

    let arc = ArcInstance::new(g).expect("valid two-terminal DAG");
    Some(Matching3dReduction {
        arc,
        budget: (n * n) as Resource,
        target: 2 * m_big + t_val,
        m_big,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_core::exact::decide_feasible;
    use rtt_core::solution::validate;

    #[test]
    fn brute_force_solver() {
        let yes = Numerical3dm::new(vec![1, 2], vec![3, 5], vec![6, 3]);
        // T = (3 + 8 + 9)/2 = 10: (1,3,6)? 1+3+6=10 ✓, (2,5,3)=10 ✓
        assert!(yes.solve().is_some());
        let no = Numerical3dm::new(vec![1, 1], vec![2, 2], vec![2, 6]);
        // total = 14, T = 7: triples need 1+2+4 — no: sums are 1+2+{2,6}:
        // 5, 9 — never 7.
        assert!(no.solve().is_none());
    }

    #[test]
    fn yes_instance_reaches_2m_plus_t() {
        let inst = Numerical3dm::new(vec![1, 2], vec![3, 5], vec![6, 3]);
        let red = reduce(&inst).unwrap();
        assert_eq!(red.budget, 4);
        let sol = decide_feasible(&red.arc, red.budget, red.target)
            .expect("matching exists ⇒ target reachable");
        validate(&red.arc, &sol).unwrap();
    }

    #[test]
    fn no_instance_misses_target() {
        let inst = Numerical3dm::new(vec![1, 1], vec![2, 2], vec![2, 6]);
        let red = reduce(&inst).unwrap();
        assert!(
            decide_feasible(&red.arc, red.budget, red.target).is_none(),
            "no matching ⇒ makespan > 2M + T"
        );
        // it only misses by the triple imbalance, not by M
        assert!(decide_feasible(&red.arc, red.budget, red.target + 2).is_some());
    }

    #[test]
    fn n1_trivial_lane() {
        let inst = Numerical3dm::new(vec![4], vec![5], vec![6]);
        let red = reduce(&inst).unwrap();
        assert_eq!(red.target, 2 * 16 + 15);
        let sol = decide_feasible(&red.arc, 1, red.target).unwrap();
        validate(&red.arc, &sol).unwrap();
    }

    #[test]
    fn indivisible_total_rejected_early() {
        let inst = Numerical3dm::new(vec![1, 2], vec![3, 4], vec![5, 7]);
        // total 22, n = 2 -> T = 11 OK; make an indivisible one:
        let odd = Numerical3dm::new(vec![1, 2], vec![3, 4], vec![5, 6]);
        // total 21, 21/2 not integral
        assert!(odd.triple_target().is_none());
        assert!(reduce(&odd).is_none());
        assert!(reduce(&inst).is_some());
    }

    #[test]
    fn matcher_permutation_structure() {
        // with budget n² and the target, the solution's uncovered
        // M-edges form a permutation (one per row and column of each
        // matcher): check via the witness flows of a yes-instance.
        let inst = Numerical3dm::new(vec![1, 2], vec![3, 5], vec![6, 3]);
        let red = reduce(&inst).unwrap();
        let sol = decide_feasible(&red.arc, red.budget, red.target).unwrap();
        // count M-edges (t0 == m_big) with zero flow: must be exactly
        // n per matcher = 2n total
        let d = red.arc.dag();
        let uncovered_m: usize = d
            .edge_ids()
            .filter(|&e| {
                let dur = &d.edge(e).duration;
                dur.base_time() == red.m_big && sol.arc_flows[e.index()] == 0
            })
            .count();
        assert_eq!(uncovered_m, 2 * 2);
    }
}
