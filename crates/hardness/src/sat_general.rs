//! Theorem 4.1 / Lemma 4.2 (Figures 8–9): 1-in-3SAT → discrete
//! resource-time tradeoff with general non-increasing durations.
//!
//! The reduced DAG has makespan 1 under budget `B = n + 2m` **iff** the
//! formula is 1-in-3 satisfiable. Wiring (reconstructed from the §4.1
//! prose; all "unit edges" carry `{⟨0,1⟩, ⟨1,0⟩}`, everything else is a
//! zero-duration dummy):
//!
//! * **variable gadget** `V` (Figure 8a): `S→V1`, unit edges `V1→V2`
//!   (TRUE branch) and `V1→V3` (FALSE branch), `V2→V4`, `V3→V4`, unit
//!   edges `V4→V5`, `V5→V6`, `V6→T`. One unit of resource must traverse
//!   one branch and then cover `V4→V5→V6` — it can neither be skipped
//!   nor diverted into a clause (the tail edges only lead to `T`).
//!   After routing, `V2` finishes at 0 iff `V = TRUE`; `V3` at 0 iff
//!   `V = FALSE`.
//! * **clause gadget** `C` (Figure 8b): diamond `C1→{C2,C3}→C4` of four
//!   unit edges demanding two units (one per two-edge path); pattern
//!   vertices `C5, C6, C7` fed (by dummy arcs) from the literal nodes
//!   of the three exactly-one-true patterns `(¬ℓi,¬ℓj,ℓk)`,
//!   `(¬ℓi,ℓj,¬ℓk)`, `(ℓi,¬ℓj,¬ℓk)`; unit edges `C5→C8`, `C6→C9`,
//!   `C7→C10` to `T`. Exactly one pattern vertex finishes at 0 iff the
//!   clause has exactly one true literal (Table 2), and then the two
//!   units from `C4` cover the two late lines.

use crate::sat::{Formula, Lit};
use rtt_core::instance::{Activity, ArcInstance};
use rtt_core::solution::Solution;
use rtt_core::{Duration, Resource, Time};
use rtt_dag::{Dag, NodeId};

/// Node ids of one variable gadget.
#[derive(Debug, Clone, Copy)]
pub struct VarGadget {
    /// `V1` (entry).
    pub v1: NodeId,
    /// `V2`: finishes at 0 iff the variable is TRUE.
    pub v2: NodeId,
    /// `V3`: finishes at 0 iff the variable is FALSE.
    pub v3: NodeId,
    /// `V4`, `V5`, `V6` (the resource-retaining tail).
    pub tail: [NodeId; 3],
}

/// Node ids of one clause gadget.
#[derive(Debug, Clone, Copy)]
pub struct ClauseGadget {
    /// Diamond `C1..C4`.
    pub c1: NodeId,
    /// `C2`.
    pub c2: NodeId,
    /// `C3`.
    pub c3: NodeId,
    /// `C4`.
    pub c4: NodeId,
    /// Pattern vertices `C5, C6, C7`.
    pub patterns: [NodeId; 3],
    /// Line ends `C8, C9, C10`.
    pub ends: [NodeId; 3],
}

/// The Theorem 4.1 reduction output.
#[derive(Debug, Clone)]
pub struct SatGeneralReduction {
    /// The reduced instance.
    pub arc: ArcInstance,
    /// Resource budget `n + 2m`.
    pub budget: Resource,
    /// Makespan target (1).
    pub target: Time,
    /// Per-variable gadget handles.
    pub vars: Vec<VarGadget>,
    /// Per-clause gadget handles.
    pub clauses: Vec<ClauseGadget>,
    /// Source.
    pub source: NodeId,
    /// Sink.
    pub sink: NodeId,
}

fn unit_edge() -> Activity {
    Activity::new(Duration::two_point(1, 1, 0))
}

/// The three exactly-one-true patterns of a clause `(ℓi, ℓj, ℓk)`:
/// pattern `p` asserts literal `p` true and the other two false.
/// Entry `r` of the returned array is the literal-as-required for
/// pattern-vertex `C(5+p)` position `r`.
fn pattern_literals(clause: &[Lit; 3], p: usize) -> [Lit; 3] {
    let mut lits = *clause;
    for (r, l) in lits.iter_mut().enumerate() {
        if r != p {
            l.positive = !l.positive; // require the literal false
        }
    }
    lits
}

/// Builds the reduction.
pub fn reduce(f: &Formula) -> SatGeneralReduction {
    let mut g: Dag<(), Activity> = Dag::new();
    let s = g.add_node(());
    let t = g.add_node(());

    let mut vars = Vec::with_capacity(f.n_vars);
    for _ in 0..f.n_vars {
        let v1 = g.add_node(());
        let v2 = g.add_node(());
        let v3 = g.add_node(());
        let v4 = g.add_node(());
        let v5 = g.add_node(());
        let v6 = g.add_node(());
        g.add_edge(s, v1, Activity::dummy()).unwrap();
        g.add_edge(v1, v2, unit_edge()).unwrap();
        g.add_edge(v1, v3, unit_edge()).unwrap();
        g.add_edge(v2, v4, Activity::dummy()).unwrap();
        g.add_edge(v3, v4, Activity::dummy()).unwrap();
        g.add_edge(v4, v5, unit_edge()).unwrap();
        g.add_edge(v5, v6, unit_edge()).unwrap();
        g.add_edge(v6, t, Activity::dummy()).unwrap();
        vars.push(VarGadget {
            v1,
            v2,
            v3,
            tail: [v4, v5, v6],
        });
    }

    // literal node: V2 for a positive occurrence, V3 for a negative one
    let lit_node = |vars: &[VarGadget], l: Lit| {
        if l.positive {
            vars[l.var].v2
        } else {
            vars[l.var].v3
        }
    };

    let mut clauses = Vec::with_capacity(f.n_clauses());
    for clause in &f.clauses {
        let c1 = g.add_node(());
        let c2 = g.add_node(());
        let c3 = g.add_node(());
        let c4 = g.add_node(());
        g.add_edge(s, c1, Activity::dummy()).unwrap();
        g.add_edge(c1, c2, unit_edge()).unwrap();
        g.add_edge(c2, c4, unit_edge()).unwrap();
        g.add_edge(c1, c3, unit_edge()).unwrap();
        g.add_edge(c3, c4, unit_edge()).unwrap();
        let mut patterns = [NodeId(0); 3];
        let mut ends = [NodeId(0); 3];
        for p in 0..3 {
            let cp = g.add_node(());
            let ce = g.add_node(());
            g.add_edge(c4, cp, Activity::dummy()).unwrap();
            for l in pattern_literals(clause, p) {
                g.add_edge(lit_node(&vars, l), cp, Activity::dummy())
                    .unwrap();
            }
            g.add_edge(cp, ce, unit_edge()).unwrap();
            g.add_edge(ce, t, Activity::dummy()).unwrap();
            patterns[p] = cp;
            ends[p] = ce;
        }
        clauses.push(ClauseGadget {
            c1,
            c2,
            c3,
            c4,
            patterns,
            ends,
        });
    }

    let arc = ArcInstance::new(g).expect("reduction builds a valid two-terminal DAG");
    SatGeneralReduction {
        arc,
        budget: (f.n_vars + 2 * f.n_clauses()) as Resource,
        target: 1,
        vars,
        clauses,
        source: s,
        sink: t,
    }
}

/// Builds the *honest* routing for a 1-in-3 satisfying `assignment`
/// (the forward direction of Lemma 4.2): one unit per variable along
/// its truth branch, two units per clause through the diamond and into
/// the two late pattern lines. Returns `None` if the assignment is not
/// a 1-in-3 model.
pub fn honest_solution(
    red: &SatGeneralReduction,
    f: &Formula,
    assignment: &[bool],
) -> Option<Solution> {
    if !f.satisfied_1in3(assignment) {
        return None;
    }
    let d = red.arc.dag();
    let mut flows = vec![0u64; d.edge_count()];
    let route = |path: &[NodeId], flows: &mut Vec<u64>| {
        for w in path.windows(2) {
            let e = d
                .out_edges(w[0])
                .iter()
                .copied()
                .find(|&e| d.dst(e) == w[1])
                .expect("path edge exists");
            flows[e.index()] += 1;
        }
    };
    for (v, &val) in red.vars.iter().zip(assignment) {
        let branch = if val { v.v2 } else { v.v3 };
        route(
            &[red.source, v.v1, branch, v.tail[0], v.tail[1], v.tail[2], red.sink],
            &mut flows,
        );
    }
    for (c, clause) in red.clauses.iter().zip(&f.clauses) {
        // the unique true literal's pattern vertex is "on time"; the two
        // units cover the other two lines
        let true_pos = clause
            .iter()
            .position(|l| l.eval(assignment))
            .expect("1-in-3 satisfied");
        let late: Vec<usize> = (0..3).filter(|&p| p != true_pos).collect();
        route(
            &[red.source, c.c1, c.c2, c.c4, c.patterns[late[0]], c.ends[late[0]], red.sink],
            &mut flows,
        );
        route(
            &[red.source, c.c1, c.c3, c.c4, c.patterns[late[1]], c.ends[late[1]], red.sink],
            &mut flows,
        );
    }
    // durations achieved: evaluate every edge at its flow
    let edge_times: Vec<Time> = d
        .edge_ids()
        .map(|e| red.arc.arc_time(e, flows[e.index()]))
        .collect();
    let makespan = rtt_dag::longest_path_edges(d, |e| edge_times[e.index()])
        .expect("acyclic")
        .weight;
    let budget_used = d
        .out_edges(red.source)
        .iter()
        .map(|&e| flows[e.index()])
        .sum();
    Some(Solution {
        arc_flows: flows,
        edge_times,
        makespan,
        budget_used,
    })
}

/// Regenerates **Table 2** from the gadget itself: for each of the 8
/// truth assignments to `(Vi, Vj, Vk)`, the earliest start times of
/// `C(5)`, `C(6)`, `C(7)` in a one-clause instance `(Vi ∨ Vj ∨ Vk)`.
pub fn table2() -> Vec<([bool; 3], [Time; 3])> {
    let f = Formula::new(
        3,
        vec![[Lit::pos(0), Lit::pos(1), Lit::pos(2)]],
    );
    let red = reduce(&f);
    let d = red.arc.dag();
    let mut rows = Vec::new();
    for mask in 0..8u32 {
        let assignment = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
        // route the variable units honestly; give the clause diamond its
        // two units but stop them at C4 (we only probe C5/C6/C7 starts)
        let mut flows = vec![0u64; d.edge_count()];
        for (v, &val) in red.vars.iter().zip(&assignment) {
            let branch = if val { v.v2 } else { v.v3 };
            for w in [red.source, v.v1, branch, v.tail[0], v.tail[1], v.tail[2], red.sink]
                .windows(2)
            {
                let e = d
                    .out_edges(w[0])
                    .iter()
                    .copied()
                    .find(|&e| d.dst(e) == w[1])
                    .unwrap();
                flows[e.index()] += 1;
            }
        }
        let c = &red.clauses[0];
        for path in [[red.source, c.c1, c.c2, c.c4], [red.source, c.c1, c.c3, c.c4]] {
            for w in path.windows(2) {
                let e = d
                    .out_edges(w[0])
                    .iter()
                    .copied()
                    .find(|&e| d.dst(e) == w[1])
                    .unwrap();
                flows[e.index()] += 1;
            }
        }
        // C4 -> sink via one pattern line so flow stays conserved: for
        // the probe we only need event times, so route the two units
        // through patterns 0 and 1 arbitrarily.
        for p in [0usize, 1] {
            for w in [c.c4, c.patterns[p], c.ends[p], red.sink].windows(2) {
                let e = d
                    .out_edges(w[0])
                    .iter()
                    .copied()
                    .find(|&e| d.dst(e) == w[1])
                    .unwrap();
                flows[e.index()] += 1;
            }
        }
        let times = rtt_dag::paths::event_times(d, |e| {
            red.arc.arc_time(e, flows[e.index()])
        })
        .unwrap();
        // Paper column order: C(5) = pattern "ℓk true", C(6) = "ℓj true",
        // C(7) = "ℓi true" — i.e. our patterns reversed.
        rows.push((
            assignment,
            [
                times[c.patterns[2].index()],
                times[c.patterns[1].index()],
                times[c.patterns[0].index()],
            ],
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_core::exact::decide_feasible;
    use rtt_core::solution::validate;

    #[test]
    fn paper_example_forward() {
        let f = Formula::paper_example();
        let red = reduce(&f);
        assert_eq!(red.budget, 3 + 2 * 2);
        let sol = honest_solution(&red, &f, &[true, true, false]).unwrap();
        validate(&red.arc, &sol).unwrap();
        assert_eq!(sol.makespan, 1, "Lemma 4.2 forward: makespan 1");
        assert!(sol.budget_used <= red.budget);
    }

    #[test]
    fn gadget_shape() {
        let f = Formula::paper_example();
        let red = reduce(&f);
        // 2 + 6n + 10m nodes
        assert_eq!(red.arc.dag().node_count(), 2 + 6 * 3 + 10 * 2);
        // per var 8 edges; per clause 5 + 3*(1 dummy + 3 lit + 1 unit + 1 out)
        assert_eq!(red.arc.dag().edge_count(), 8 * 3 + 23 * 2);
    }

    #[test]
    fn unsatisfiable_formula_needs_makespan_2() {
        // the 4-clause unsat instance from sat.rs tests
        let f = Formula::new(
            3,
            vec![
                [Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                [Lit::neg(0), Lit::neg(1), Lit::pos(2)],
                [Lit::pos(0), Lit::neg(1), Lit::neg(2)],
                [Lit::neg(0), Lit::pos(1), Lit::neg(2)],
            ],
        );
        assert!(f.solve_1in3().is_none());
        let red = reduce(&f);
        assert!(
            decide_feasible(&red.arc, red.budget, 1).is_none(),
            "Theorem 4.3: unsat ⇒ OPT ≥ 2"
        );
        // and makespan 2 is reachable (cover what you can)
        assert!(decide_feasible(&red.arc, red.budget, 2).is_some());
    }

    #[test]
    fn equivalence_on_exhaustive_small_universe() {
        // every 1-clause formula over 3 variables, all polarities
        for f in Formula::enumerate_all(3, 1) {
            let red = reduce(&f);
            let sat = f.solve_1in3();
            let feasible = decide_feasible(&red.arc, red.budget, red.target);
            assert_eq!(
                sat.is_some(),
                feasible.is_some(),
                "Lemma 4.2 equivalence failed for {f:?}"
            );
            if let (Some(a), Some(sol)) = (sat, feasible) {
                validate(&red.arc, &sol).unwrap();
                let honest = honest_solution(&red, &f, &a).unwrap();
                assert_eq!(honest.makespan, 1);
            }
        }
    }

    #[test]
    fn table2_matches_paper() {
        // Table 2 of the paper, rows ordered (Vi, Vj, Vk) as printed.
        let expected: &[([bool; 3], [u64; 3])] = &[
            ([true, true, true], [1, 1, 1]),
            ([false, true, true], [1, 1, 1]),
            ([true, false, true], [1, 1, 1]),
            ([true, true, false], [1, 1, 1]),
            ([false, false, true], [0, 1, 1]),
            ([false, true, false], [1, 0, 1]),
            ([true, false, false], [1, 1, 0]),
            ([false, false, false], [1, 1, 1]),
        ];
        let rows = table2();
        for (assignment, want) in expected {
            let got = rows
                .iter()
                .find(|(a, _)| a == assignment)
                .map(|(_, t)| t)
                .unwrap();
            assert_eq!(got, want, "Table 2 row {assignment:?}");
        }
    }

    #[test]
    fn budget_minus_one_fails_even_when_satisfiable() {
        let f = Formula::paper_example();
        let red = reduce(&f);
        assert!(decide_feasible(&red.arc, red.budget - 1, 1).is_none());
    }
}
