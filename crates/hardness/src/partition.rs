//! Theorem 4.6 (Figures 15–16): weak NP-hardness on DAGs whose
//! underlying undirected graph has bounded treewidth, by reduction from
//! **Partition**.
//!
//! Per item `i` with value `s_i` (total `B = Σ s_i`):
//!
//! * `s → v1_i` with `{⟨0,M⟩, ⟨s_i,0⟩}` — forces `s_i` units into the
//!   item's gadget (`M > B/2` exceeds the makespan target);
//! * `v1_i → v2_i` (top) and `v1_i → v3_i` (bottom) dummies — the units
//!   choose a side;
//! * two horizontal chains thread all items: the **top path** enters
//!   `v2_i` and leaves `v4_i` through the cost edge
//!   `v2_i→v4_i = {⟨0,s_i⟩, ⟨s_i,0⟩}`; the **bottom path** mirrors it
//!   through `v3_i→v5_i`. Sending the units top makes the top cost 0
//!   and leaves `s_i` on the bottom path, and vice versa;
//! * `v4_i, v5_i → v6_i` dummies and the funnel
//!   `v6_i → v0 = {⟨0,M⟩, ⟨s_i,0⟩}` — the units must exit to the sink
//!   right away ("their resources cannot be passed along to nodes
//!   v(2)_j, v(3)_j to the right").
//!
//! The makespan is `max(Σ_top s_i, Σ_bot s_i) ≥ B/2`, with equality iff
//! the items split into two halves of equal sum. The bags
//! `{s, v0} ∪ gadget_i ∪ {v4_{i−1}, v5_{i−1}}` form a path decomposition
//! of width ≤ 9 — constructed and *verified* by
//! [`tree_decomposition`].

use rtt_core::instance::{Activity, ArcInstance};
use rtt_core::{Duration, Resource, Time};
use rtt_dag::treewidth::TreeDecomposition;
use rtt_dag::{Dag, NodeId};

/// A Partition instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionInstance {
    /// The positive item values.
    pub items: Vec<u64>,
}

impl PartitionInstance {
    /// New instance (items must be positive).
    pub fn new(items: Vec<u64>) -> Self {
        assert!(items.iter().all(|&s| s > 0), "items must be positive");
        PartitionInstance { items }
    }

    /// Total value `B`.
    pub fn total(&self) -> u64 {
        self.items.iter().sum()
    }

    /// Brute-force: a subset summing to `B/2`, as a bitmask, if any.
    pub fn solve(&self) -> Option<u64> {
        let b = self.total();
        if !b.is_multiple_of(2) {
            return None;
        }
        let n = self.items.len();
        assert!(n < 30, "brute force limited to < 30 items");
        (0u64..(1 << n)).find(|mask| {
            let sum: u64 = self
                .items
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &s)| s)
                .sum();
            sum * 2 == b
        })
    }
}

/// Node ids of one item gadget.
#[derive(Debug, Clone, Copy)]
pub struct ItemGadget {
    /// Entry (`v1`).
    pub v1: NodeId,
    /// Top in / bottom in (`v2`, `v3`).
    pub v2: NodeId,
    /// Bottom in.
    pub v3: NodeId,
    /// Top out / bottom out (`v4`, `v5`).
    pub v4: NodeId,
    /// Bottom out.
    pub v5: NodeId,
    /// Funnel (`v6`).
    pub v6: NodeId,
}

/// The Theorem 4.6 reduction output.
#[derive(Debug, Clone)]
pub struct PartitionReduction {
    /// The reduced instance.
    pub arc: ArcInstance,
    /// Budget `B` (every unit is forced anyway).
    pub budget: Resource,
    /// Makespan target `B/2`.
    pub target: Time,
    /// Gadget handles.
    pub gadgets: Vec<ItemGadget>,
    /// Source / sink ids.
    pub terminals: (NodeId, NodeId),
}

/// Builds the reduction. Requires an even total (odd totals are
/// trivially "no" instances of Partition; the caller can pre-check).
pub fn reduce(p: &PartitionInstance) -> PartitionReduction {
    let b = p.total();
    let m: Time = b / 2 + b + 1; // M > B/2, comfortably
    let mut g: Dag<(), Activity> = Dag::new();
    let s = g.add_node(());
    let v0 = g.add_node(());

    let mut gadgets: Vec<ItemGadget> = Vec::with_capacity(p.items.len());
    for (i, &si) in p.items.iter().enumerate() {
        let v1 = g.add_node(());
        let v2 = g.add_node(());
        let v3 = g.add_node(());
        let v4 = g.add_node(());
        let v5 = g.add_node(());
        let v6 = g.add_node(());
        g.add_edge(s, v1, Activity::new(Duration::two_point(m, si, 0)))
            .unwrap();
        g.add_edge(v1, v2, Activity::dummy()).unwrap();
        g.add_edge(v1, v3, Activity::dummy()).unwrap();
        g.add_edge(v2, v4, Activity::new(Duration::two_point(si, si, 0)))
            .unwrap();
        g.add_edge(v3, v5, Activity::new(Duration::two_point(si, si, 0)))
            .unwrap();
        g.add_edge(v4, v6, Activity::dummy()).unwrap();
        g.add_edge(v5, v6, Activity::dummy()).unwrap();
        g.add_edge(v6, v0, Activity::new(Duration::two_point(m, si, 0)))
            .unwrap();
        // horizontal chains
        let (prev_top, prev_bot) = if i == 0 {
            (s, s)
        } else {
            (gadgets[i - 1].v4, gadgets[i - 1].v5)
        };
        g.add_edge(prev_top, v2, Activity::dummy()).unwrap();
        g.add_edge(prev_bot, v3, Activity::dummy()).unwrap();
        gadgets.push(ItemGadget {
            v1,
            v2,
            v3,
            v4,
            v5,
            v6,
        });
    }
    // chain ends reach the sink
    if let Some(last) = gadgets.last() {
        g.add_edge(last.v4, v0, Activity::dummy()).unwrap();
        g.add_edge(last.v5, v0, Activity::dummy()).unwrap();
    } else {
        g.add_edge(s, v0, Activity::dummy()).unwrap();
    }

    let arc = ArcInstance::new(g).expect("valid two-terminal DAG");
    PartitionReduction {
        arc,
        budget: b,
        target: b / 2,
        gadgets,
        terminals: (s, v0),
    }
}

/// The explicit Figure 16 path decomposition:
/// `bag_i = {s, v0} ∪ gadget_i ∪ {v4_{i−1}, v5_{i−1}}` (width ≤ 9).
pub fn tree_decomposition(red: &PartitionReduction) -> TreeDecomposition {
    let (s, v0) = red.terminals;
    let mut bags = Vec::with_capacity(red.gadgets.len().max(1));
    if red.gadgets.is_empty() {
        return TreeDecomposition {
            bags: vec![vec![s, v0]],
            tree_edges: vec![],
        };
    }
    for (i, gd) in red.gadgets.iter().enumerate() {
        let mut bag = vec![s, v0, gd.v1, gd.v2, gd.v3, gd.v4, gd.v5, gd.v6];
        if i > 0 {
            bag.push(red.gadgets[i - 1].v4);
            bag.push(red.gadgets[i - 1].v5);
        }
        bags.push(bag);
    }
    let tree_edges = (0..bags.len() - 1).map(|i| (i, i + 1)).collect();
    TreeDecomposition { bags, tree_edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_core::exact::decide_feasible;
    use rtt_core::solution::validate;

    #[test]
    fn yes_instance_hits_half() {
        let p = PartitionInstance::new(vec![3, 1, 2, 2]); // 4+4
        assert!(p.solve().is_some());
        let red = reduce(&p);
        let sol = decide_feasible(&red.arc, red.budget, red.target)
            .expect("partitionable ⇒ makespan B/2");
        validate(&red.arc, &sol).unwrap();
        assert_eq!(sol.makespan, 4);
    }

    #[test]
    fn no_instance_exceeds_half() {
        let p = PartitionInstance::new(vec![3, 3, 1, 1]); // total 8, no 4-4? {3,1} = 4: yes!
        assert!(p.solve().is_some());
        // a genuine no-instance: {5, 1, 1, 1}: total 8, subsets: 5+1+1+1
        // combos give 5,6,7,8,1,2,3 — 4 unreachable.
        let p = PartitionInstance::new(vec![5, 1, 1, 1]);
        assert!(p.solve().is_none());
        let red = reduce(&p);
        assert!(
            decide_feasible(&red.arc, red.budget, red.target).is_none(),
            "no partition ⇒ makespan > B/2"
        );
        // the best achievable is 5 (put the 5 alone on one side)
        assert!(decide_feasible(&red.arc, red.budget, 5).is_some());
    }

    #[test]
    fn odd_total_never_partitions() {
        let p = PartitionInstance::new(vec![2, 2, 1]);
        assert!(p.solve().is_none());
        let red = reduce(&p);
        assert!(decide_feasible(&red.arc, red.budget, red.target).is_none());
    }

    #[test]
    fn exhaustive_small_instances_equivalence() {
        // all multisets from {1,2,3} of size 3
        for a in 1..=3u64 {
            for b in a..=3 {
                for c in b..=3 {
                    let p = PartitionInstance::new(vec![a, b, c]);
                    let red = reduce(&p);
                    let yes = p.solve().is_some();
                    let feasible =
                        decide_feasible(&red.arc, red.budget, red.target).is_some();
                    assert_eq!(yes, feasible, "items {:?}", p.items);
                }
            }
        }
    }

    #[test]
    fn treewidth_at_most_9_and_valid() {
        let p = PartitionInstance::new(vec![3, 1, 2, 2, 4, 4]);
        let red = reduce(&p);
        let td = tree_decomposition(&red);
        let width = td.verify(red.arc.dag()).expect("valid decomposition");
        assert!(width <= 9, "width {width} (paper's version: 15)");
    }

    #[test]
    fn budget_is_forced_exactly() {
        // the gadget needs *all* of B: feasible at B, infeasible at B−1
        // (decide_feasible is a decision procedure — with surplus budget
        // it may return a wasteful witness, so force the boundary)
        let p = PartitionInstance::new(vec![2, 2]);
        let red = reduce(&p);
        let sol = decide_feasible(&red.arc, red.budget, red.target).unwrap();
        validate(&red.arc, &sol).unwrap();
        assert_eq!(sol.budget_used, red.budget, "all of B is forced through");
        assert!(
            decide_feasible(&red.arc, red.budget - 1, red.target).is_none(),
            "B − 1 units cannot cover the M-edges"
        );
    }
}
