//! Cross-request solution reuse: a concurrent, capacity-bounded LRU of
//! **solved reports** and **warm LP bases**, shared across every worker
//! of a [`crate::run_batch_cached`] call (and across calls, if the
//! caller keeps the cache).
//!
//! # The contract: cost, never bytes
//!
//! The batch NDJSON wire format includes deterministic work counters
//! (`work`, the budget `consumed` block), so any reuse that changed
//! *how* an answer was computed would change bytes. The cache is
//! therefore split into two tiers with different reuse granularity:
//!
//! * **Solution tier** — whole **report vectors**, keyed by
//!   `(canonical instance, objective, alpha, seed, solver)`. Every
//!   solver in the registry is a deterministic pure function of exactly
//!   that tuple, so replaying a cached report is byte-identical to
//!   re-running the solver — including `work` and `sim_makespan`. A
//!   single solve caches a one-report vector; a `MakespanSweep` caches
//!   the whole per-point vector (the grid is part of the key), which is
//!   how *wire* sweeps get cross-request reuse without touching warm
//!   state. A hit skips the solve but **re-runs the full analytic
//!   validation and Observation 1.1 certify replay** against the
//!   requesting instance before the report leaves the engine, so a
//!   reused result is exactly as certified as a fresh one. Only
//!   unbudgeted, deadline-free requests are eligible: a budgeted
//!   request's wire-visible `consumed` counters describe *this run's*
//!   metered work, which a replay does not perform, and a deadline's
//!   expiry is wall-clock state, not request content.
//!
//!   Since PR 8 this tier also **survives restarts**: `rtt batch
//!   --cache-save/--cache-load` spill and reload it through the
//!   versioned `rtt-cache-v1` format ([`crate::persist`]). A loaded
//!   entry has no donor instance ([`CachedSolution::donor`] is `None`),
//!   so its trust rests on the full key-string comparison (which embeds
//!   the canonical instance serialization) **plus** the same fresh
//!   re-validation + re-certification every hit gets at serve time — a
//!   tampered or stale entry panics the replay and is reported as a
//!   failed solve, never silently served.
//!
//! * **Warm-basis tier** — [`LpWarmState`]s (budget-row-tagged LP
//!   template + last optimal basis), keyed by the instance's *shape*
//!   ([`PreparedInstance::shape`]), generalizing the per-instance slot
//!   [`PreparedInstance::take_lp_warm`] to sharing **across requests
//!   and across duration-perturbed siblings**. A sibling's basis has
//!   the right LP layout to offer `rtt_lp::revised::solve_warm`, which
//!   verifies it at install time and falls back to the crash basis —
//!   so a stale or mismatched entry costs pivots, never correctness.
//!   Warm-started solves land on the **same certified objective** as
//!   cold ones (the LP optimum is unique in value; the delta tests pin
//!   it), but their pivot counts differ — which is why this tier serves
//!   only the [`crate::solve_curve_cached`] API and the explicit
//!   [`solve_delta_point`] API, both *off* the batch wire, and never
//!   the batch solver fan-out. Wire sweeps (`budgets` request lines)
//!   deliberately bypass it: they run a self-contained crash-started
//!   chain so their on-wire pivot counts stay a pure function of the
//!   request line (see [`crate::curve`]), and get their cross-request
//!   reuse from the solution tier above.
//!
//! Eviction (deterministic LRU: least `(stamp, key)` first) and
//! concurrent access order can change which tier entries are resident —
//! that too only moves work between "replayed" and "recomputed", with
//! byte-identical output either way, because every replay source is a
//! deterministic function of request content.
//!
//! # Collision discipline
//!
//! Like [`crate::PrepCache`], both tiers store and compare **full key
//! strings** (the canonical/shape serialization plus request
//! parameters), not digests — and the solution tier additionally
//! requires pointer identity of the [`PreparedInstance`] for entries
//! that have one (in-process entries do; disk-loaded entries fall back
//! to the key comparison plus serve-time re-verification). A hash
//! collision anywhere costs a recomputation, never a wrong answer.

use crate::prep::{LpWarmState, PreparedInstance};
use crate::request::{Objective, SolveReport, SolveRequest, Status};
use rtt_core::lp_build::LpError;
use rtt_core::Resource;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters of one [`ReuseCache`] — reported on `rtt batch`'s stderr
/// stats line (never on the NDJSON wire).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Solution-tier hits: whole reports replayed (and re-certified)
    /// instead of re-solved.
    pub solution_hits: u64,
    /// Solution-tier misses (includes ineligible-donor misses).
    pub solution_misses: u64,
    /// Warm-tier hits where the entry's canonical instance matched:
    /// template + basis reused outright.
    pub warm_hits: u64,
    /// Warm-tier misses (no resident entry for the shape).
    pub warm_misses: u64,
    /// Solves seeded from a reused basis across a budget change or a
    /// duration-perturbed sibling — the delta path.
    pub delta_solves: u64,
    /// Entries evicted from either tier to stay within capacity.
    pub evictions: u64,
    /// Simplex pivots the solution tier did **not** execute: the sum of
    /// cached `work` counters over all hits. (The wire still reports
    /// the original `work` — bytes are identical; this counter is what
    /// the cache actually saved.)
    pub pivots_saved: u64,
}

/// A deterministic LRU map: entries stamped with a logical tick,
/// victim = least `(stamp, key)`.
#[derive(Debug)]
struct Lru<V> {
    map: HashMap<String, (V, u64)>,
    tick: u64,
    cap: usize,
}

impl<V> Lru<V> {
    fn new(cap: usize) -> Self {
        Lru {
            map: HashMap::new(),
            tick: 0,
            cap: cap.max(1),
        }
    }

    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn get_refreshed(&mut self, key: &str) -> Option<&V> {
        let tick = self.touch();
        self.map.get_mut(key).map(|(v, last)| {
            *last = tick;
            &*v
        })
    }

    fn remove(&mut self, key: &str) -> Option<V> {
        self.map.remove(key).map(|(v, _)| v)
    }

    /// Inserts, evicting least-recently-used entries past capacity.
    /// Returns how many were evicted.
    fn insert(&mut self, key: String, value: V) -> u64 {
        let tick = self.touch();
        if let Some(slot) = self.map.get_mut(&key) {
            *slot = (value, tick);
            return 0;
        }
        let mut evicted = 0;
        while self.map.len() >= self.cap {
            let victim = self
                .map
                .iter()
                .map(|(k, (_, last))| (*last, k.clone()))
                .min()
                .expect("cap >= 1, map non-empty")
                .1;
            self.map.remove(&victim);
            evicted += 1;
        }
        self.map.insert(key, (value, tick));
        evicted
    }
}

/// A solution-tier entry: the report vector (one report for a single
/// solve, one per grid point for a sweep) plus the exact prepared
/// instance that produced it. In-process entries carry their donor and
/// are pointer-compared on hit (see the module docs on collision
/// discipline); entries loaded from a `rtt-cache-v1` spill have no
/// donor and rely on the key comparison + serve-time re-verification.
#[derive(Debug)]
struct CachedSolution {
    reports: Vec<SolveReport>,
    donor: Option<Arc<PreparedInstance>>,
}

/// A warm-tier entry: the donor's canonical key (to distinguish
/// same-instance template reuse from cross-sibling basis-only reuse)
/// plus its LP warm state.
#[derive(Debug)]
pub struct WarmEntry {
    /// Canonical key of the instance that parked this state.
    pub canonical: String,
    /// The parked template + basis.
    pub state: LpWarmState,
}

/// The shared cross-request cache. Both tiers are independently
/// capacity-bounded at the same `capacity`; see the module docs for
/// the reuse contract.
#[derive(Debug)]
pub struct ReuseCache {
    solutions: Mutex<Lru<Arc<CachedSolution>>>,
    warm: Mutex<Lru<WarmEntry>>,
    solution_hits: AtomicU64,
    solution_misses: AtomicU64,
    warm_hits: AtomicU64,
    warm_misses: AtomicU64,
    delta_solves: AtomicU64,
    evictions: AtomicU64,
    pivots_saved: AtomicU64,
}

impl ReuseCache {
    /// An empty cache holding at most `capacity` entries **per tier**
    /// (`0` is treated as 1).
    pub fn new(capacity: usize) -> Self {
        ReuseCache {
            solutions: Mutex::new(Lru::new(capacity)),
            warm: Mutex::new(Lru::new(capacity)),
            solution_hits: AtomicU64::new(0),
            solution_misses: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            warm_misses: AtomicU64::new(0),
            delta_solves: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            pivots_saved: AtomicU64::new(0),
        }
    }

    /// The solution-tier key for `(req, solver)`, or `None` when the
    /// request is ineligible (budgeted or deadlined — see the module
    /// docs for why). Sweeps are eligible: the whole budget grid is
    /// part of the key, so a hit replays the full per-point vector.
    pub fn solution_key(req: &SolveRequest, solver: &str) -> Option<String> {
        if req.budget.is_some() || req.deadline.is_some() {
            return None;
        }
        let obj = match &req.objective {
            Objective::MinMakespan { budget } => format!("mm:{budget}"),
            Objective::MinResource { target } => format!("mr:{target}"),
            Objective::MakespanSweep { budgets } => {
                let grid: Vec<String> = budgets.iter().map(|b| b.to_string()).collect();
                format!("sw:{}", grid.join(","))
            }
        };
        Some(format!(
            "sol-v1|{solver}|{obj}|a={:016x}|s={}|{}",
            req.alpha.to_bits(),
            req.seed,
            req.prepared.canonical().key,
        ))
    }

    /// Solution-tier probe: a clone of the cached report vector for
    /// `key`, or `None` (counted as one hit/miss per probe). The clones
    /// still carry the *donor's* id and certificate — [`crate::executor`]
    /// overwrites the id and re-runs the validation + certify replay on
    /// every report before it is released.
    pub fn lookup_solution(&self, key: &str, req: &SolveRequest) -> Option<Vec<SolveReport>> {
        let mut tier = self.solutions.lock().expect("solution tier poisoned");
        let hit = tier
            .get_refreshed(key)
            // pointer identity when a donor exists: replay only against
            // the instance that produced the report (canonical-keyed
            // PrepCaches make this hold for structural duplicates too).
            // Loaded entries have no donor; the key embeds the full
            // canonical serialization, and the serve-time re-verification
            // backstops it.
            .filter(|c| {
                c.donor
                    .as_ref()
                    .is_none_or(|d| Arc::ptr_eq(d, &req.prepared))
            })
            .map(|c| c.reports.clone());
        drop(tier);
        match &hit {
            Some(rs) => {
                self.solution_hits.fetch_add(1, Ordering::Relaxed);
                let saved: u64 = rs.iter().map(|r| r.work).sum();
                self.pivots_saved.fetch_add(saved, Ordering::Relaxed);
            }
            None => {
                self.solution_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        hit
    }

    /// Parks a freshly solved report vector in the solution tier. Only
    /// fully-[`Status::Solved`] vectors are worth the space (a sweep
    /// with any failed point is not replayable); callers pass the same
    /// `key` their probe used.
    pub fn store_solution(&self, key: String, req: &SolveRequest, reports: &[SolveReport]) {
        if reports.is_empty() || reports.iter().any(|r| r.status != Status::Solved) {
            return;
        }
        let entry = Arc::new(CachedSolution {
            reports: reports.to_vec(),
            donor: Some(Arc::clone(&req.prepared)),
        });
        let evicted = self
            .solutions
            .lock()
            .expect("solution tier poisoned")
            .insert(key, entry);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Installs a report vector loaded from a `rtt-cache-v1` spill
    /// ([`crate::persist`]): donor-less, so a future hit matches on the
    /// full key string alone and is re-verified at serve time (see the
    /// module docs' trust rule).
    pub fn insert_loaded(&self, key: String, reports: Vec<SolveReport>) {
        if reports.is_empty() {
            return;
        }
        let entry = Arc::new(CachedSolution {
            reports,
            donor: None,
        });
        let evicted = self
            .solutions
            .lock()
            .expect("solution tier poisoned")
            .insert(key, entry);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Every solution-tier entry as `(key, reports)`, sorted by key —
    /// the deterministic export [`crate::persist::save`] spills.
    pub fn export_solutions(&self) -> Vec<(String, Vec<SolveReport>)> {
        let tier = self.solutions.lock().expect("solution tier poisoned");
        let mut out: Vec<(String, Vec<SolveReport>)> = tier
            .map
            .iter()
            .map(|(k, (v, _))| (k.clone(), v.reports.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Takes the warm entry for `shape_key` out of the warm tier
    /// (counted as hit/miss). Take semantics serialize concurrent
    /// sweeps onto disjoint templates, exactly like the per-instance
    /// slot this tier generalizes.
    pub fn take_warm(&self, shape_key: &str) -> Option<WarmEntry> {
        let taken = self
            .warm
            .lock()
            .expect("warm tier poisoned")
            .remove(shape_key);
        match taken {
            Some(e) => {
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                Some(e)
            }
            None => {
                self.warm_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Parks a warm state back under `shape_key` for the next taker.
    pub fn put_warm(&self, shape_key: String, entry: WarmEntry) {
        let evicted = self
            .warm
            .lock()
            .expect("warm tier poisoned")
            .insert(shape_key, entry);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Records one delta solve (a solve seeded from a reused basis
    /// across a budget change or sibling instance).
    pub fn note_delta(&self) {
        self.delta_solves.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> ReuseStats {
        ReuseStats {
            solution_hits: self.solution_hits.load(Ordering::Relaxed),
            solution_misses: self.solution_misses.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            warm_misses: self.warm_misses.load(Ordering::Relaxed),
            delta_solves: self.delta_solves.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            pivots_saved: self.pivots_saved.load(Ordering::Relaxed),
        }
    }
}

/// The **delta-solve** service: LP 6–10 for `prep` at `budget`,
/// reoptimized from whatever basis the cache holds for this instance's
/// shape — its own earlier basis (budget delta) or a perturbed
/// sibling's (duration delta) — and parked back for the next caller.
///
/// Returns the fractional LP optimum. The objective is the certified
/// LP value whichever start was used (warm starts change pivot counts,
/// never the optimum — `delta_objective_matches_cold` pins it); on a
/// cross-sibling hit the template is rebuilt for *this* instance's
/// durations and only the basis crosses over, so a reused basis can
/// never smuggle in stale coefficients.
pub fn solve_delta_point(
    prep: &PreparedInstance,
    cache: &ReuseCache,
    budget: Resource,
) -> Result<rtt_core::lp_build::FractionalSolution, LpError> {
    let tt = prep.tt();
    let shape_key = prep.shape().key.clone();
    let canonical = prep.canonical().key.clone();
    let (mut state, seed_basis, is_delta) = match cache.take_warm(&shape_key) {
        Some(entry) if entry.canonical == canonical => {
            // same instance: template + basis reused outright; still a
            // delta solve if the budget row moves (solve_delta meters
            // the dual repair either way)
            let basis = entry.state.basis.clone();
            (entry.state, basis, true)
        }
        Some(entry) => {
            // shape sibling: its template has the wrong durations —
            // rebuild ours, offer only the basis
            let state = prep.take_lp_warm();
            (state, entry.state.basis, true)
        }
        None => {
            let state = prep.take_lp_warm();
            let basis = state.basis.clone();
            (state, basis, false)
        }
    };
    let result = state
        .lp
        .solve_delta_metered(tt, budget, seed_basis.as_ref(), None);
    match result {
        Ok((frac, basis)) => {
            if is_delta && seed_basis.is_some() {
                cache.note_delta();
            }
            state.basis = basis;
            cache.put_warm(shape_key, WarmEntry { canonical, state });
            Ok(frac)
        }
        Err(e) => {
            // park the template (basis cleared) so the next caller
            // still skips the build
            state.basis = None;
            cache.put_warm(shape_key, WarmEntry { canonical, state });
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_core::instance::Activity;
    use rtt_core::ArcInstance;
    use rtt_dag::Dag;
    use rtt_duration::Duration;
    use rtt_lp::WarmStart;

    fn diamond(slow_base: u64) -> ArcInstance {
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, Activity::new(Duration::two_point(5, 2, 1)))
            .unwrap();
        g.add_edge(s, b, Activity::new(Duration::two_point(slow_base, 3, 2)))
            .unwrap();
        g.add_edge(a, t, Activity::new(Duration::constant(1)))
            .unwrap();
        g.add_edge(b, t, Activity::new(Duration::constant(2)))
            .unwrap();
        ArcInstance::new(g).unwrap()
    }

    #[test]
    fn delta_objective_matches_cold_across_budgets() {
        let prep = PreparedInstance::new(diamond(9));
        let cache = ReuseCache::new(16);
        for budget in [0u64, 1, 2, 3, 4, 5] {
            let delta = solve_delta_point(&prep, &cache, budget).unwrap();
            let cold =
                rtt_core::lp_build::solve_min_makespan_lp(prep.tt(), budget).unwrap();
            assert!(
                (delta.makespan - cold.makespan).abs() < 1e-9,
                "budget {budget}: delta {} vs cold {}",
                delta.makespan,
                cold.makespan
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.warm_misses, 1, "only the first take misses");
        assert_eq!(stats.warm_hits, 5);
        assert!(stats.delta_solves >= 5, "later budgets are delta solves");
    }

    #[test]
    fn sibling_basis_crosses_over_and_objective_stays_certified() {
        let base = PreparedInstance::new(diamond(9));
        let sibling = PreparedInstance::new(diamond(11));
        assert_eq!(base.shape().key, sibling.shape().key);
        assert_ne!(base.canonical().key, sibling.canonical().key);
        let cache = ReuseCache::new(16);
        let _ = solve_delta_point(&base, &cache, 3).unwrap();
        // the sibling's solve takes the base's entry, rebuilds its own
        // template, and seeds from the crossed-over basis
        let delta = solve_delta_point(&sibling, &cache, 3).unwrap();
        let cold = rtt_core::lp_build::solve_min_makespan_lp(sibling.tt(), 3).unwrap();
        assert!((delta.makespan - cold.makespan).abs() < 1e-9);
        let stats = cache.stats();
        assert_eq!(stats.warm_hits, 1);
        assert_eq!(stats.delta_solves, 1, "the sibling's solve is the delta");
        // provenance: the sibling's solve actually used a warm start
        // (dual repair or straight primal), or the engine rejected the
        // offer and fell back — either way the objective matched cold
        assert_ne!(delta.stats.warm, WarmStart::Cold);
    }

    #[test]
    fn lru_eviction_is_deterministic_and_counted() {
        let cache = ReuseCache::new(2);
        let preps: Vec<_> = (0..4).map(|i| PreparedInstance::new(diamond(9 + i))).collect();
        // distinct shapes? no — same shape key; use the solution tier
        // for eviction behavior instead, via distinct keys
        let mut tier = cache.solutions.lock().unwrap();
        for (i, _p) in preps.iter().enumerate() {
            let dummy = Arc::new(CachedSolution {
                reports: vec![SolveReport::new("x", "bicriteria", Status::Solved, "")],
                donor: Some(Arc::new(PreparedInstance::new(diamond(9)))),
            });
            tier.insert(format!("k{i}"), dummy);
        }
        assert_eq!(tier.map.len(), 2);
        let mut left: Vec<_> = tier.map.keys().cloned().collect();
        left.sort();
        assert_eq!(left, vec!["k2", "k3"], "LRU evicts oldest first");
    }
}
