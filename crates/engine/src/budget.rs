//! Request-level budget policy: limits, exhaustion policies, and the
//! per-request [`BudgetContext`] the executor threads into every solve.
//!
//! The metering mechanism lives in `rtt_budget` (below every solver
//! crate); *policy* lives here. A [`SolveRequest`](crate::SolveRequest)
//! may carry a [`BudgetSpec`]: hard limits per dimension plus an
//! [`ExhaustionPolicy`] per dimension saying what the engine does when
//! a limit trips mid-solve:
//!
//! * [`ExhaustionPolicy::HardReject`] — the report fails with
//!   [`Status::BudgetExhausted`](crate::Status::BudgetExhausted) and a
//!   structured reason (dimension, limit, consumed);
//! * [`ExhaustionPolicy::Degrade`] — the executor falls back along a
//!   declared chain (`exact` → `bicriteria`, `sp-dp` → `bicriteria`,
//!   `noreuse-exact` → `noreuse-bicriteria`; a full simulation
//!   certificate degrades to analytic-only) and marks the report
//!   `degraded_from`;
//! * [`ExhaustionPolicy::SoftWarn`] — the solve runs to completion
//!   (the limit is *not* installed on the meter) and the report is
//!   flagged when consumption exceeded the declared limit.
//!
//! Counter dimensions charge at deterministic points, so rejection,
//! degradation, and warnings are all byte-stable across thread counts.
//! The wall-clock deadline and cooperative cancellation are the two
//! intentionally non-deterministic dimensions and stay off the wire,
//! like `deadline_ms` today.

use rtt_budget::{BudgetMeter, Consumed, Dimension};
use std::sync::Arc;
use std::time::Instant;

/// Per-dimension hard limits a request declares. `None` = unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetLimits {
    /// Cap on simplex pivots + bound flips across every LP the request
    /// solves.
    pub lp_pivots: Option<u64>,
    /// Cap on combinatorial solver work (SP-DP merge steps and
    /// exact-search nodes — the unified `work` dimension).
    pub dp_merge_steps: Option<u64>,
    /// Cap on Observation 1.1 certification simulation events.
    pub sim_events: Option<u64>,
    /// Admission bound: reject if this many requests were enqueued
    /// ahead of this one (checked once at dispatch, never mid-solve).
    pub queue_depth: Option<u64>,
}

impl BudgetLimits {
    /// Whether no limit is set on any dimension.
    pub fn is_empty(&self) -> bool {
        self.lp_pivots.is_none()
            && self.dp_merge_steps.is_none()
            && self.sim_events.is_none()
            && self.queue_depth.is_none()
    }

    /// The declared limit for a dimension (`None` for unlimited or for
    /// the limitless wall-clock/cancel dimensions).
    pub fn for_dimension(&self, dim: Dimension) -> Option<u64> {
        match dim {
            Dimension::LpPivots => self.lp_pivots,
            Dimension::DpMergeSteps => self.dp_merge_steps,
            Dimension::SimEvents => self.sim_events,
            Dimension::QueueDepth => self.queue_depth,
            Dimension::WallClock | Dimension::Cancelled => None,
        }
    }
}

/// What the engine does when a budget dimension runs out mid-solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExhaustionPolicy {
    /// Fail the report with [`crate::Status::BudgetExhausted`] and the
    /// structured reason.
    #[default]
    HardReject,
    /// Fall back along the solver's declared degradation chain (or
    /// reject if it has none); certificate exhaustion degrades the
    /// report to analytic-only instead of failing it.
    Degrade,
    /// Complete the solve at full fidelity and flag the report when the
    /// declared limit was exceeded. The limit is advisory: it is *not*
    /// installed on the meter, so the solver never trips.
    SoftWarn,
}

impl ExhaustionPolicy {
    /// Stable lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ExhaustionPolicy::HardReject => "hard-reject",
            ExhaustionPolicy::Degrade => "degrade",
            ExhaustionPolicy::SoftWarn => "soft-warn",
        }
    }

    /// Parses a wire name (see [`ExhaustionPolicy::as_str`]).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "hard-reject" => Ok(ExhaustionPolicy::HardReject),
            "degrade" => Ok(ExhaustionPolicy::Degrade),
            "soft-warn" => Ok(ExhaustionPolicy::SoftWarn),
            other => Err(format!(
                "unknown exhaustion policy {other:?} (expected hard-reject, degrade, or soft-warn)"
            )),
        }
    }
}

/// Per-dimension exhaustion policies. Wall-clock and cancellation are
/// always hard (they reuse the deadline machinery and cannot be
/// degraded around), so only the counter dimensions are configurable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetPolicies {
    /// Policy when the pivot cap trips.
    pub lp_pivots: ExhaustionPolicy,
    /// Policy when the combinatorial-work cap trips.
    pub dp_merge_steps: ExhaustionPolicy,
    /// Policy when the simulation-event cap trips.
    pub sim_events: ExhaustionPolicy,
    /// Policy when the queue-depth bound trips at dispatch.
    pub queue_depth: ExhaustionPolicy,
}

impl BudgetPolicies {
    /// The same policy on every configurable dimension.
    pub fn uniform(p: ExhaustionPolicy) -> Self {
        BudgetPolicies {
            lp_pivots: p,
            dp_merge_steps: p,
            sim_events: p,
            queue_depth: p,
        }
    }

    /// The policy governing a dimension. Wall-clock and cancellation
    /// always hard-reject (mapped onto the deadline machinery).
    pub fn for_dimension(&self, dim: Dimension) -> ExhaustionPolicy {
        match dim {
            Dimension::LpPivots => self.lp_pivots,
            Dimension::DpMergeSteps => self.dp_merge_steps,
            Dimension::SimEvents => self.sim_events,
            Dimension::QueueDepth => self.queue_depth,
            Dimension::WallClock | Dimension::Cancelled => ExhaustionPolicy::HardReject,
        }
    }
}

/// The budget a request declares: limits plus per-dimension policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Per-dimension hard limits.
    pub limits: BudgetLimits,
    /// Per-dimension exhaustion policies.
    pub policies: BudgetPolicies,
}

impl BudgetSpec {
    /// A spec with the given limits and [`ExhaustionPolicy::HardReject`]
    /// everywhere.
    pub fn with_limits(limits: BudgetLimits) -> Self {
        BudgetSpec {
            limits,
            policies: BudgetPolicies::default(),
        }
    }
}

/// The per-(request, solver) enforcement state the executor builds:
/// the meter (if the request declared any enforceable limit) plus the
/// spec the report is judged against afterwards.
///
/// The meter is `Arc`-shared so the executor can keep a cancellation
/// handle while the solver borrows the meter — raising
/// [`BudgetMeter::cancel`] from another thread unwinds the solve at
/// its next periodic check.
#[derive(Debug, Default)]
pub struct BudgetContext {
    meter: Option<Arc<BudgetMeter>>,
    spec: Option<BudgetSpec>,
}

impl BudgetContext {
    /// A context with no budget: solvers see no meter, reports carry no
    /// budget block — the pre-budget engine behavior, byte for byte.
    pub fn unbudgeted() -> Self {
        Self::default()
    }

    /// Builds the context for a request. A meter is created only when
    /// the request declares a budget; a dimension's limit is installed
    /// on the meter only under `HardReject`/`Degrade` (a `SoftWarn`
    /// limit is advisory and judged post-solve, so the solver must not
    /// trip on it). The request deadline becomes the meter's mid-solve
    /// wall-clock deadline only when a budget is declared — deadline-
    /// only requests keep the legacy at-dequeue-only enforcement.
    pub fn for_request(req: &crate::SolveRequest, queued_at: Instant) -> Self {
        let Some(spec) = req.budget else {
            return Self::unbudgeted();
        };
        let enforceable = |limit: Option<u64>, policy: ExhaustionPolicy| match policy {
            ExhaustionPolicy::SoftWarn => None,
            _ => limit,
        };
        let meter = BudgetMeter::with_limits(
            enforceable(spec.limits.lp_pivots, spec.policies.lp_pivots),
            enforceable(spec.limits.dp_merge_steps, spec.policies.dp_merge_steps),
            enforceable(spec.limits.sim_events, spec.policies.sim_events),
            req.deadline.map(|d| queued_at + d),
        );
        BudgetContext {
            meter: Some(Arc::new(meter)),
            spec: Some(spec),
        }
    }

    /// The meter to thread into solvers (`None` when unbudgeted).
    pub fn meter(&self) -> Option<&BudgetMeter> {
        self.meter.as_deref()
    }

    /// A shareable cancellation handle, for callers that want to unwind
    /// this request's solve from another thread.
    pub fn cancel_handle(&self) -> Option<Arc<BudgetMeter>> {
        self.meter.clone()
    }

    /// The declared spec (`None` when unbudgeted).
    pub fn spec(&self) -> Option<&BudgetSpec> {
        self.spec.as_ref()
    }

    /// Consumption so far (zeros when unbudgeted).
    pub fn consumed(&self) -> Consumed {
        self.meter
            .as_deref()
            .map(BudgetMeter::consumed)
            .unwrap_or_default()
    }
}

/// The wire-visible budget block of a report: what was consumed, what
/// was declared, and any soft-warn/degradation flags. Present exactly
/// when the request declared a [`BudgetSpec`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BudgetReport {
    /// Consumption counters at report time (cumulative across the
    /// request's whole solve, fallback included).
    pub consumed: Consumed,
    /// The limits the request declared.
    pub limits: BudgetLimits,
    /// Soft-warn flags: one `"<dimension> <consumed> > limit <limit>"`
    /// entry per advisory limit the solve exceeded.
    pub warnings: Vec<String>,
    /// Degradations applied while still reporting `solved` (e.g.
    /// `"certificate degraded to analytic-only: sim_events … > limit …"`).
    pub degraded: Vec<String>,
}

impl BudgetReport {
    /// Builds the block from the context after the solve, computing
    /// soft-warn flags by comparing consumption against the advisory
    /// limits. `degraded` notes are appended by the executor.
    pub fn from_context(ctx: &BudgetContext) -> Option<Self> {
        let spec = ctx.spec?;
        let consumed = ctx.consumed();
        let mut warnings = Vec::new();
        let mut warn = |dim: Dimension, used: u64| {
            if spec.policies.for_dimension(dim) == ExhaustionPolicy::SoftWarn {
                if let Some(limit) = spec.limits.for_dimension(dim) {
                    if used > limit {
                        warnings.push(format!("{dim} {used} > limit {limit}"));
                    }
                }
            }
        };
        warn(Dimension::LpPivots, consumed.lp_pivots);
        warn(Dimension::DpMergeSteps, consumed.dp_merge_steps);
        warn(Dimension::SimEvents, consumed.sim_events);
        Some(BudgetReport {
            consumed,
            limits: spec.limits,
            warnings,
            degraded: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_budget::Exhausted;

    #[test]
    fn policy_wire_names_round_trip() {
        for p in [
            ExhaustionPolicy::HardReject,
            ExhaustionPolicy::Degrade,
            ExhaustionPolicy::SoftWarn,
        ] {
            assert_eq!(ExhaustionPolicy::parse(p.as_str()), Ok(p));
        }
        assert!(ExhaustionPolicy::parse("never").is_err());
    }

    #[test]
    fn soft_warn_limits_stay_off_the_meter() {
        let spec = BudgetSpec {
            limits: BudgetLimits {
                lp_pivots: Some(5),
                ..Default::default()
            },
            policies: BudgetPolicies::uniform(ExhaustionPolicy::SoftWarn),
        };
        let enforceable = |limit: Option<u64>, policy: ExhaustionPolicy| match policy {
            ExhaustionPolicy::SoftWarn => None,
            _ => limit,
        };
        assert_eq!(
            enforceable(spec.limits.lp_pivots, spec.policies.lp_pivots),
            None
        );
        assert_eq!(
            enforceable(spec.limits.lp_pivots, ExhaustionPolicy::HardReject),
            Some(5)
        );
    }

    #[test]
    fn budget_report_flags_soft_warn_overage() {
        let _ = Exhausted {
            dimension: Dimension::LpPivots,
            limit: 1,
            consumed: 2,
        };
        let spec = BudgetSpec {
            limits: BudgetLimits {
                lp_pivots: Some(3),
                ..Default::default()
            },
            policies: BudgetPolicies::uniform(ExhaustionPolicy::SoftWarn),
        };
        let ctx = BudgetContext {
            meter: Some(Arc::new(BudgetMeter::unlimited())),
            spec: Some(spec),
        };
        ctx.meter().unwrap().charge_lp_pivots(7).unwrap();
        let block = BudgetReport::from_context(&ctx).unwrap();
        assert_eq!(block.warnings, vec!["lp_pivots 7 > limit 3".to_string()]);
        assert_eq!(block.consumed.lp_pivots, 7);
    }
}
