//! The uniform request/report types every solver speaks.

use crate::prep::PreparedInstance;
use rtt_core::{GlobalSchedule, NoReuseSolution, Solution};
use rtt_duration::{Resource, Time};
use std::sync::Arc;
use std::time::Duration as StdDuration;

/// What a request asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Objective {
    /// Minimize the makespan under a resource budget `B` (§3 problems).
    MinMakespan {
        /// The resource budget.
        budget: Resource,
    },
    /// Minimize the resource subject to a makespan target `T`.
    MinResource {
        /// The makespan target.
        target: Time,
    },
    /// The resource-time **tradeoff curve**: min-makespan at every
    /// budget of a grid, solved as one warm-started LP chain (the
    /// revised engine dual-reoptimizes each point from the previous
    /// basis). Produces one report per budget, in grid order. On the
    /// batch NDJSON wire as the `budgets` request field: the executor
    /// answers each wire sweep with a **self-contained** chain (crash
    /// start, then per-point delta reoptimization), so its pivot
    /// counts are a pure function of the request line and the report
    /// bytes stay independent of scheduling and of cache state.
    /// `rtt curve` is the interactive front end for the same service.
    MakespanSweep {
        /// The budget grid, in the order points should be solved and
        /// reported.
        budgets: Vec<Resource>,
    },
}

/// Which registered solvers a request should run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverSelection {
    /// One solver, by registry name.
    Named(String),
    /// Every registered solver that [`supports`](crate::Solver::supports)
    /// the instance.
    All,
}

/// One unit of work for the engine: an instance (with shared
/// preprocessing), an objective, and execution knobs.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Caller-chosen identifier, echoed in every report.
    pub id: String,
    /// The instance, deduplicated/shared via [`crate::PrepCache`].
    pub prepared: Arc<PreparedInstance>,
    /// What to optimize.
    pub objective: Objective,
    /// Rounding parameter for the bi-criteria pipelines (§3.1's α).
    pub alpha: f64,
    /// Which solver(s) to run.
    pub solver: SolverSelection,
    /// Per-request deadline, measured from enqueue time. A request
    /// still queued when its deadline passes is reported as
    /// [`Status::DeadlineExpired`] without running — and, when the
    /// request also declares a [`SolveRequest::budget`], the deadline is
    /// additionally enforced *mid-solve* through the budget meter.
    pub deadline: Option<StdDuration>,
    /// Seed echoed into reports (reserved for randomized solvers; every
    /// current solver is deterministic).
    pub seed: u64,
    /// Resource budget (per-dimension limits + exhaustion policies).
    /// `None` — the default and every constructor's choice — runs the
    /// pre-budget engine behavior byte for byte.
    pub budget: Option<crate::budget::BudgetSpec>,
    /// Intra-solve thread count for the deterministic parallel paths
    /// (`rtt_par`): chunked LP pricing, subtree-parallel SP-DP, sharded
    /// certification replay. `None` defers to the ambient resolution
    /// (enclosing `rtt_par::with_threads` scope, else the
    /// `RTT_SOLVE_THREADS` environment variable, else serial). Purely an
    /// execution knob: reports and wire bytes are identical at every
    /// value — only the wall clock moves.
    pub intra_threads: Option<usize>,
}

impl SolveRequest {
    /// A minimum-makespan request with the common defaults
    /// (α = 0.5, no deadline, seed 0, all supporting solvers).
    pub fn min_makespan(
        id: impl Into<String>,
        prepared: Arc<PreparedInstance>,
        budget: Resource,
    ) -> Self {
        SolveRequest {
            id: id.into(),
            prepared,
            objective: Objective::MinMakespan { budget },
            alpha: 0.5,
            solver: SolverSelection::All,
            deadline: None,
            seed: 0,
            budget: None,
            intra_threads: None,
        }
    }

    /// Same defaults for a minimum-resource request.
    pub fn min_resource(
        id: impl Into<String>,
        prepared: Arc<PreparedInstance>,
        target: Time,
    ) -> Self {
        SolveRequest {
            id: id.into(),
            prepared,
            objective: Objective::MinResource { target },
            alpha: 0.5,
            solver: SolverSelection::All,
            deadline: None,
            seed: 0,
            budget: None,
            intra_threads: None,
        }
    }

    /// A tradeoff-curve request: min-makespan at every budget of
    /// `budgets`, solved by the bicriteria pipeline as one warm-started
    /// LP chain (α = 0.5, no deadline, seed 0).
    pub fn sweep(
        id: impl Into<String>,
        prepared: Arc<PreparedInstance>,
        budgets: Vec<Resource>,
    ) -> Self {
        SolveRequest {
            id: id.into(),
            prepared,
            objective: Objective::MakespanSweep { budgets },
            alpha: 0.5,
            solver: SolverSelection::Named("bicriteria".into()),
            deadline: None,
            seed: 0,
            budget: None,
            intra_threads: None,
        }
    }

    /// Selects a single solver by name.
    pub fn with_solver(mut self, name: impl Into<String>) -> Self {
        self.solver = SolverSelection::Named(name.into());
        self
    }

    /// Sets the intra-solve thread count (clamped by `rtt_par` to
    /// `1..=`[`rtt_par::MAX_THREADS`] when applied). Never changes what
    /// the request emits, only what it costs.
    pub fn with_intra_threads(mut self, threads: usize) -> Self {
        self.intra_threads = Some(threads);
        self
    }
}

/// Terminal state of one (request, solver) execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// The solver produced (and internally certified) a result.
    Solved,
    /// The solver does not apply to this instance or objective.
    Unsupported,
    /// The objective is unreachable (e.g. a makespan target below the
    /// ideal makespan).
    Infeasible,
    /// The request's deadline passed before the solver started.
    DeadlineExpired,
    /// A declared resource budget ran out mid-solve under the
    /// hard-reject policy (or degrade with no fallback); the structured
    /// reason is in [`SolveReport::exhausted`].
    BudgetExhausted,
    /// The solver panicked; the executor isolated it and reported the
    /// panic payload in [`SolveReport::detail`] instead of killing the
    /// batch.
    Failed,
}

impl Status {
    /// Stable lowercase wire name (used by the NDJSON batch format).
    pub fn as_str(&self) -> &'static str {
        match self {
            Status::Solved => "solved",
            Status::Unsupported => "unsupported",
            Status::Infeasible => "infeasible",
            Status::DeadlineExpired => "deadline-expired",
            Status::BudgetExhausted => "budget-exhausted",
            Status::Failed => "failed",
        }
    }
}

/// The uniform answer: solution + certificates + execution counters.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Echo of [`SolveRequest::id`].
    pub id: String,
    /// Registry name of the solver that produced this report.
    pub solver: &'static str,
    /// Terminal state.
    pub status: Status,
    /// Human-readable detail for non-[`Status::Solved`] reports.
    pub detail: String,
    /// Achieved makespan.
    pub makespan: Option<Time>,
    /// Resource consumed (routed flow value, Σ levels, or peak pool
    /// usage, per the solver's regime).
    pub budget_used: Option<Resource>,
    /// LP lower bound on the optimal makespan, when the pipeline
    /// computes one.
    pub lp_makespan: Option<f64>,
    /// LP resource usage / lower bound, when computed.
    pub lp_budget: Option<f64>,
    /// Certified factor on the makespan (`makespan ≤ factor · OPT`);
    /// `1.0` for exact solvers, absent for heuristics.
    pub makespan_factor: Option<f64>,
    /// Certified factor on the resource, same conventions.
    pub resource_factor: Option<f64>,
    /// The routed integral solution, for solvers in the paper's
    /// reuse-over-paths regime (the regime baselines carry their own
    /// forms below instead).
    pub solution: Option<Solution>,
    /// The dedicated-allocation solution, for the no-reuse (Q1.1)
    /// solvers — validated by `validate_noreuse` and replayed for the
    /// simulation certificate like every other form.
    pub noreuse: Option<NoReuseSolution>,
    /// The global-pool schedule, for the global-reuse (Q1.2) solver —
    /// verified by `verify_global_schedule` and replayed
    /// schedule-granularly for the simulation certificate.
    pub schedule: Option<GlobalSchedule>,
    /// Solver-specific work counter (simplex pivots, search nodes, DP
    /// cells — see each solver's docs).
    pub work: u64,
    /// LP engine dimensions and pivot phase split, for pipelines that
    /// solved an LP ([`rtt_lp::LpStats`]). Diagnostics only — like the
    /// wall-clock fields it stays **off** the batch wire format.
    pub lp_stats: Option<rtt_lp::LpStats>,
    /// Simulation-backed certificate (Observation 1.1): the solution's
    /// reducer expansion — routed flows, dedicated no-reuse levels, or
    /// the schedule-granular global-pool replay, per the solver's
    /// regime — was executed by `rtt_sim`'s event engine and finished
    /// within the reported makespan. Present on **every** solved report
    /// of every registry pipeline (absent only for skipped simulations:
    /// infinite durations, or expansions past
    /// [`crate::certify::SIM_EVENT_GUARD`]). Deterministic, so its
    /// `simulated` tick is part of the NDJSON wire format
    /// (`sim_makespan`).
    pub sim: Option<crate::certify::SimCertificate>,
    /// Wall-clock time of the solve call itself.
    pub wall: StdDuration,
    /// Time the request spent queued before the solve started.
    pub queue_wait: StdDuration,
    /// Budget consumed/declared/flagged, present exactly when the
    /// request declared a [`crate::budget::BudgetSpec`]. Counter
    /// dimensions are deterministic, so this block is part of the
    /// byte-stable wire format.
    pub budget: Option<crate::budget::BudgetReport>,
    /// When the degrade policy fell back, the registry name of the
    /// solver that originally exhausted (the report's `solver` is the
    /// fallback that actually answered).
    pub degraded_from: Option<&'static str>,
    /// The structured exhaustion that terminated the solve, for
    /// [`Status::BudgetExhausted`] reports.
    pub exhausted: Option<rtt_budget::Exhausted>,
    /// Whether this report came from an isolated solver panic
    /// ([`Status::Failed`]).
    pub panicked: bool,
    /// For per-point reports of a [`Objective::MakespanSweep`] request,
    /// the grid budget this point was solved at — `None` on every other
    /// report, which keeps the non-sweep wire format byte-identical.
    /// The batch renderer dispatches on this field to emit the
    /// curve-point line form instead of the solver-report form.
    pub sweep_budget: Option<Resource>,
}

impl SolveReport {
    /// A report skeleton with the given status and no solution fields —
    /// the base both failure reports and (to-be-filled) solved reports
    /// start from.
    pub fn new(
        id: impl Into<String>,
        solver: &'static str,
        status: Status,
        detail: impl Into<String>,
    ) -> Self {
        SolveReport {
            id: id.into(),
            solver,
            status,
            detail: detail.into(),
            makespan: None,
            budget_used: None,
            lp_makespan: None,
            lp_budget: None,
            makespan_factor: None,
            resource_factor: None,
            solution: None,
            noreuse: None,
            schedule: None,
            work: 0,
            lp_stats: None,
            sim: None,
            wall: StdDuration::ZERO,
            queue_wait: StdDuration::ZERO,
            budget: None,
            degraded_from: None,
            exhausted: None,
            panicked: false,
            sweep_budget: None,
        }
    }
}
