//! `rtt-cache-v1`: the versioned spill/load format for the solution
//! tier of a [`crate::ReuseCache`], behind `rtt batch --cache-save` /
//! `--cache-load`.
//!
//! # Format
//!
//! Line-oriented UTF-8 text. The first line is the header:
//!
//! ```text
//! rtt-cache-v1 fp=rtt-fp-v1 entries=<n>
//! ```
//!
//! `fp=` pins the canonical-fingerprint serialization the keys embed
//! ([`rtt_core::CANONICAL_FORM_TAG`]): a spill written under a
//! different fingerprint version is meaningless to this binary and is
//! rejected at the header, like a version mismatch. Then exactly `n`
//! entry lines, each tab-separated:
//!
//! ```text
//! <escaped key> \t <m> \t <report fields> × m \t <fnv64 checksum>
//! ```
//!
//! Each report contributes 10 fields: solver name, `sweep_budget`,
//! `makespan`, `budget_used` (integers or `-`), the four float fields
//! (`lp_makespan`, `lp_budget`, `makespan_factor`, `resource_factor`)
//! as `f64::to_bits` hex — exact round-trip, no decimal drift — the
//! `work` counter, and the solution form (`sol:`/`nr:`/`sched:` with
//! `,`-joined vectors and `;`-separated sections, or `none`). The
//! final field is an FNV-1a 64 checksum over everything before it, so
//! a flipped byte anywhere in the line is detected before parsing is
//! trusted.
//!
//! # Trust model: the file is untrusted input
//!
//! Loading is **all-or-nothing**: every line is checksum-verified and
//! parsed before a single entry is installed, so a corrupt file loads
//! zero entries and surfaces a structured [`PersistError`] — never a
//! half-populated cache. What loading does *not* do is trust the
//! payload: a loaded entry is installed donor-less
//! ([`crate::ReuseCache::insert_loaded`]), and a future hit must pass
//! the full key-string comparison **and** the serve-time analytic
//! re-validation + Observation 1.1 certify replay in
//! [`crate::executor`] before its bytes reach the wire. The spill only
//! ever changes what a run costs — certificates are recomputed fresh,
//! and a tampered solution is rejected at replay.
//!
//! Timing fields, budget blocks, and certificates are deliberately not
//! persisted: only [`crate::Status::Solved`], unbudgeted reports enter
//! the solution tier, and every per-serve field is recomputed.

use crate::registry::Registry;
use crate::request::{SolveReport, Status};
use crate::reuse::ReuseCache;
use rtt_core::{GlobalSchedule, NoReuseSolution, Solution};
use std::fmt;
use std::path::Path;

/// The format tag on the header line. Bump on any layout change — an
/// old binary must reject a new spill and vice versa, loudly.
pub const CACHE_FORMAT_TAG: &str = "rtt-cache-v1";

/// Why a spill failed to save or load. Loading never partially
/// succeeds: any variant here means zero entries were installed.
#[derive(Debug)]
pub enum PersistError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The header line is missing or malformed.
    BadHeader,
    /// The file declares a different format version.
    Version {
        /// The tag the file declared.
        found: String,
    },
    /// The file was written under a different canonical-fingerprint
    /// serialization; its keys cannot match this binary's.
    Fingerprint {
        /// The `fp=` tag the file declared.
        found: String,
    },
    /// The file ended before the declared entry count.
    Truncated {
        /// Entries the header declared.
        expected: usize,
        /// Entry lines actually present.
        found: usize,
    },
    /// One entry line failed its checksum or did not parse.
    Entry {
        /// 1-based line number in the file.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadHeader => write!(f, "missing or malformed {CACHE_FORMAT_TAG} header"),
            PersistError::Version { found } => write!(
                f,
                "format version mismatch: file is {found:?}, this binary speaks {CACHE_FORMAT_TAG}"
            ),
            PersistError::Fingerprint { found } => write!(
                f,
                "fingerprint version mismatch: file keys use {found:?}, this binary uses {:?}",
                rtt_core::CANONICAL_FORM_TAG
            ),
            PersistError::Truncated { expected, found } => write!(
                f,
                "truncated: header declares {expected} entries, file holds {found}"
            ),
            PersistError::Entry { line, reason } => {
                write!(f, "corrupt entry at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// FNV-1a 64 over `bytes` — the per-line checksum. Not cryptographic;
/// it detects corruption, while *integrity* of served bytes rests on
/// the serve-time re-verification (see the module docs).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Escapes a key for single-field storage (`\` `\t` `\n` `\r`).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

fn fmt_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "-".into(), |v| v.to_string())
}

fn fmt_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "-".into(), |v| format!("{:016x}", v.to_bits()))
}

fn parse_opt_u64(s: &str) -> Result<Option<u64>, String> {
    if s == "-" {
        return Ok(None);
    }
    s.parse::<u64>()
        .map(Some)
        .map_err(|_| format!("bad integer {s:?}"))
}

fn parse_opt_f64(s: &str) -> Result<Option<f64>, String> {
    if s == "-" {
        return Ok(None);
    }
    u64::from_str_radix(s, 16)
        .map(|bits| Some(f64::from_bits(bits)))
        .map_err(|_| format!("bad float bits {s:?}"))
}

fn fmt_vec(v: &[u64]) -> String {
    let parts: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    parts.join(",")
}

fn parse_vec(s: &str) -> Result<Vec<u64>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| p.parse::<u64>().map_err(|_| format!("bad vector item {p:?}")))
        .collect()
}

fn fmt_form(r: &SolveReport) -> String {
    if let Some(s) = &r.solution {
        format!(
            "sol:{};{};{};{}",
            fmt_vec(&s.arc_flows),
            fmt_vec(&s.edge_times),
            s.makespan,
            s.budget_used
        )
    } else if let Some(n) = &r.noreuse {
        format!(
            "nr:{};{};{};{}",
            fmt_vec(&n.levels),
            fmt_vec(&n.edge_times),
            n.makespan,
            n.budget_used
        )
    } else if let Some(s) = &r.schedule {
        format!(
            "sched:{};{};{};{};{}",
            fmt_vec(&s.start),
            fmt_vec(&s.finish),
            fmt_vec(&s.level),
            s.makespan,
            s.peak_in_use
        )
    } else {
        "none".into()
    }
}

fn parse_form(s: &str, r: &mut SolveReport) -> Result<(), String> {
    let sections = |body: &str, n: usize| -> Result<Vec<String>, String> {
        let parts: Vec<String> = body.split(';').map(str::to_string).collect();
        if parts.len() != n {
            return Err(format!("form expects {n} sections, got {}", parts.len()));
        }
        Ok(parts)
    };
    let scalar = |s: &str| s.parse::<u64>().map_err(|_| format!("bad scalar {s:?}"));
    if let Some(body) = s.strip_prefix("sol:") {
        let p = sections(body, 4)?;
        r.solution = Some(Solution {
            arc_flows: parse_vec(&p[0])?,
            edge_times: parse_vec(&p[1])?,
            makespan: scalar(&p[2])?,
            budget_used: scalar(&p[3])?,
        });
    } else if let Some(body) = s.strip_prefix("nr:") {
        let p = sections(body, 4)?;
        r.noreuse = Some(NoReuseSolution {
            levels: parse_vec(&p[0])?,
            edge_times: parse_vec(&p[1])?,
            makespan: scalar(&p[2])?,
            budget_used: scalar(&p[3])?,
        });
    } else if let Some(body) = s.strip_prefix("sched:") {
        let p = sections(body, 5)?;
        r.schedule = Some(GlobalSchedule {
            start: parse_vec(&p[0])?,
            finish: parse_vec(&p[1])?,
            level: parse_vec(&p[2])?,
            makespan: scalar(&p[3])?,
            peak_in_use: scalar(&p[4])?,
        });
    } else if s != "none" {
        return Err(format!("unknown form tag in {s:?}"));
    }
    Ok(())
}

/// Fields one report contributes to its entry line.
const REPORT_FIELDS: usize = 10;

fn push_report_fields(fields: &mut Vec<String>, r: &SolveReport) {
    fields.push(r.solver.to_string());
    fields.push(fmt_opt_u64(r.sweep_budget));
    fields.push(fmt_opt_u64(r.makespan));
    fields.push(fmt_opt_u64(r.budget_used));
    fields.push(fmt_opt_f64(r.lp_makespan));
    fields.push(fmt_opt_f64(r.lp_budget));
    fields.push(fmt_opt_f64(r.makespan_factor));
    fields.push(fmt_opt_f64(r.resource_factor));
    fields.push(r.work.to_string());
    fields.push(fmt_form(r));
}

fn parse_report_fields(fields: &[String], registry: &Registry) -> Result<SolveReport, String> {
    let solver = registry
        .resolve(&fields[0])
        .map(|s| s.name())
        .ok_or_else(|| format!("unknown solver {:?}", fields[0]))?;
    // loaded reports are Solved by construction (only fully-solved
    // vectors are spilled); id/timing/budget are per-serve fields
    let mut r = SolveReport::new("", solver, Status::Solved, "");
    r.sweep_budget = parse_opt_u64(&fields[1])?;
    r.makespan = parse_opt_u64(&fields[2])?;
    r.budget_used = parse_opt_u64(&fields[3])?;
    r.lp_makespan = parse_opt_f64(&fields[4])?;
    r.lp_budget = parse_opt_f64(&fields[5])?;
    r.makespan_factor = parse_opt_f64(&fields[6])?;
    r.resource_factor = parse_opt_f64(&fields[7])?;
    r.work = fields[8]
        .parse::<u64>()
        .map_err(|_| format!("bad work counter {:?}", fields[8]))?;
    parse_form(&fields[9], &mut r)?;
    Ok(r)
}

/// Serializes one `(key, reports)` entry, checksum included.
fn entry_line(key: &str, reports: &[SolveReport]) -> String {
    let mut fields = vec![esc(key), reports.len().to_string()];
    for r in reports {
        push_report_fields(&mut fields, r);
    }
    let body = fields.join("\t");
    format!("{body}\t{:016x}", fnv64(body.as_bytes()))
}

fn parse_entry_line(
    line_no: usize,
    line: &str,
    registry: &Registry,
) -> Result<(String, Vec<SolveReport>), PersistError> {
    let entry = |reason: String| PersistError::Entry {
        line: line_no,
        reason,
    };
    let fields: Vec<String> = line.split('\t').map(str::to_string).collect();
    if fields.len() < 3 {
        return Err(entry("too few fields".into()));
    }
    let (body_fields, check) = fields.split_at(fields.len() - 1);
    let body = body_fields.join("\t");
    let want = format!("{:016x}", fnv64(body.as_bytes()));
    if check[0] != want {
        return Err(entry("checksum mismatch".into()));
    }
    let key = unesc(&body_fields[0]).map_err(entry)?;
    let m: usize = body_fields[1]
        .parse()
        .map_err(|_| entry(format!("bad report count {:?}", body_fields[1])))?;
    if m == 0 {
        return Err(entry("empty report vector".into()));
    }
    if body_fields.len() != 2 + m * REPORT_FIELDS {
        return Err(entry(format!(
            "field arity: {} reports need {} fields, line has {}",
            m,
            2 + m * REPORT_FIELDS,
            body_fields.len()
        )));
    }
    // arity must agree with the key's objective: a sweep key (`sw:`)
    // holds one report per grid budget, every other key exactly one
    let is_sweep = key.split('|').nth(2).is_some_and(|obj| obj.starts_with("sw:"));
    if !is_sweep && m != 1 {
        return Err(entry(format!("non-sweep key with {m} reports")));
    }
    let mut reports = Vec::with_capacity(m);
    for i in 0..m {
        let at = 2 + i * REPORT_FIELDS;
        reports.push(parse_report_fields(&body_fields[at..at + REPORT_FIELDS], registry).map_err(entry)?);
    }
    Ok((key, reports))
}

/// Spills the solution tier of `cache` to `path` (atomically: written
/// to a sibling temp file, then renamed). Returns the entry count.
///
/// Deterministic for a given cache state: entries are sorted by key.
pub fn save(cache: &ReuseCache, path: &Path) -> Result<usize, PersistError> {
    let entries = cache.export_solutions();
    let mut out = String::new();
    out.push_str(&format!(
        "{CACHE_FORMAT_TAG} fp={} entries={}\n",
        rtt_core::CANONICAL_FORM_TAG,
        entries.len()
    ));
    for (key, reports) in &entries {
        out.push_str(&entry_line(key, reports));
        out.push('\n');
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, path)?;
    Ok(entries.len())
}

/// Loads a spill into `cache`'s solution tier. All-or-nothing: the
/// whole file is checksum-verified and parsed before a single entry is
/// installed, so any [`PersistError`] means the cache is exactly as it
/// was. `registry` resolves the stored solver names; an unknown name
/// (a spill from a differently-configured binary) rejects the file.
///
/// Installed entries are donor-less and therefore **untrusted**: they
/// must pass serve-time re-validation + re-certification before their
/// bytes reach the wire (see the module docs).
pub fn load(cache: &ReuseCache, path: &Path, registry: &Registry) -> Result<usize, PersistError> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines.next().ok_or(PersistError::BadHeader)?;
    let mut parts = header.split(' ');
    let tag = parts.next().ok_or(PersistError::BadHeader)?;
    if tag != CACHE_FORMAT_TAG {
        return Err(PersistError::Version { found: tag.into() });
    }
    let fp = parts
        .next()
        .and_then(|p| p.strip_prefix("fp="))
        .ok_or(PersistError::BadHeader)?;
    if fp != rtt_core::CANONICAL_FORM_TAG {
        return Err(PersistError::Fingerprint { found: fp.into() });
    }
    let expected: usize = parts
        .next()
        .and_then(|p| p.strip_prefix("entries="))
        .and_then(|n| n.parse().ok())
        .ok_or(PersistError::BadHeader)?;
    if parts.next().is_some() {
        return Err(PersistError::BadHeader);
    }
    let mut parsed = Vec::with_capacity(expected);
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        if parsed.len() == expected {
            return Err(PersistError::Entry {
                line: i + 2,
                reason: "more entries than the header declares".into(),
            });
        }
        parsed.push(parse_entry_line(i + 2, line, registry)?);
    }
    if parsed.len() != expected {
        return Err(PersistError::Truncated {
            expected,
            found: parsed.len(),
        });
    }
    let n = parsed.len();
    for (key, reports) in parsed {
        cache.insert_loaded(key, reports);
    }
    Ok(n)
}
