//! The unified [`Solver`] trait and its implementations — one adapter
//! per algorithm the repo ships, all speaking [`SolveRequest`] /
//! [`SolveReport`].
//!
//! | registry name | algorithm | paper |
//! |---|---|---|
//! | `exact` | exhaustive search over canonical levels | — |
//! | `bicriteria` | (1/α, 1/(1−α)) LP rounding | Thm 3.4 |
//! | `kway` | 5-approx, k-way splitting | Thm 3.9 |
//! | `recbinary` | 4-approx, recursive binary | Thm 3.10 |
//! | `recbinary-improved` | (4/3, 14/5) bi-criteria | Thm 3.16 |
//! | `sp-dp` | exact `O(mB)` DP, SP DAGs | §3.4 |
//! | `noreuse-exact` | exact, no-reuse regime | Q1.1 |
//! | `noreuse-bicriteria` | LP rounding, no-reuse regime | Q1.1 |
//! | `global-greedy` | greedy list scheduling, global pool | Q1.2 |
//!
//! Every `Solved` report is internally certified before it is returned:
//! flow solutions pass [`rtt_core::validate`], no-reuse solutions pass
//! [`rtt_core::regimes::validate_noreuse`], and global schedules pass
//! [`rtt_core::verify_global_schedule`]. On top of the analytic checks,
//! the executor replays **every** form physically ([`crate::certify`]):
//! each solved report ships with the solution object its regime
//! produces ([`Solver::solution_form`] names it), and the engine
//! attaches an Observation 1.1 simulation certificate to all of them.
//! A certification failure is an engine bug and panics rather than
//! returning silently wrong data.

use crate::budget::BudgetContext;
use crate::request::{Objective, SolveRequest, SolveReport, Status};
use rtt_budget::Exhausted;
use rtt_core::regimes::{
    solve_noreuse_bicriteria_metered, solve_noreuse_exact_metered,
    solve_noreuse_exact_min_resource_metered, validate_noreuse,
};
use rtt_core::solvers::SolveError;
use rtt_core::sp_dp::{solve_sp_exact_with_tree_metered, solve_sp_tree_metered};
use rtt_core::lp_build::LpError;
use rtt_core::{
    validate, verify_global_schedule, ApproxSolution, ArcInstance, GlobalPolicy, Solution,
};
use rtt_duration::DurationKind;

/// Whether (and how well) a solver applies to an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Capability {
    /// The solver handles this instance.
    Supported,
    /// The solver does not apply; the reason is reported verbatim.
    Unsupported(&'static str),
}

impl Capability {
    /// `true` for [`Capability::Supported`].
    pub fn is_supported(&self) -> bool {
        matches!(self, Capability::Supported)
    }
}

/// Which solution object a solver's solved reports carry — and hence
/// which replay the engine runs for the Observation 1.1 simulation
/// certificate. Every form is certified; the enum names what gets
/// expanded (`rtt solvers` prints it as the certified-output column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolutionForm {
    /// A routed integral flow ([`rtt_core::Solution`]) — the paper's
    /// reuse-over-paths regime; arcs expand at their routed flows.
    Routed,
    /// Dedicated per-arc levels ([`rtt_core::NoReuseSolution`], Q1.1);
    /// arcs expand at their dedicated levels.
    NoReuse,
    /// A timed pool schedule ([`rtt_core::GlobalSchedule`], Q1.2);
    /// arcs expand at the levels they held while scheduled.
    Schedule,
}

impl SolutionForm {
    /// Stable lowercase name (the `rtt solvers` column).
    pub fn as_str(&self) -> &'static str {
        match self {
            SolutionForm::Routed => "routed",
            SolutionForm::NoReuse => "noreuse",
            SolutionForm::Schedule => "schedule",
        }
    }
}

/// A uniform solver: every algorithm in the repo behind one interface.
///
/// Implementations must be deterministic for a fixed request (the batch
/// executor's byte-stability guarantee rests on it) and thread-safe
/// (`Send + Sync`): one registry instance serves every executor thread.
pub trait Solver: Send + Sync {
    /// Stable registry name (lowercase, dash-separated).
    fn name(&self) -> &'static str;

    /// Whether this solver applies to `arc`. This is the *fan-out
    /// gate*: `--solver all` runs only solvers that return
    /// [`Capability::Supported`]. It may also decline for cost reasons
    /// (e.g. exhaustive search on large instances); an explicitly
    /// *named* request still goes to `solve`, which must answer
    /// whenever the algorithm is defined — and return a clean
    /// [`Status::Unsupported`] report (never panic) when it is not.
    fn supports(&self, arc: &ArcInstance) -> Capability;

    /// [`Solver::supports`] with access to the shared preprocessing,
    /// so capability checks can reuse cached artifacts instead of
    /// recomputing them (the executor's `all` fan-out calls this).
    /// Defaults to delegating to [`Solver::supports`].
    fn supports_prepared(&self, prep: &crate::PreparedInstance) -> Capability {
        self.supports(prep.arc())
    }

    /// Executes the request. Never panics on unsupported input or
    /// infeasible objectives; those come back as statuses. `ctx` is the
    /// request's budget enforcement state: implementations thread
    /// [`BudgetContext::meter`] into their compute loops and surface a
    /// mid-solve [`rtt_budget::Exhausted`] as a
    /// [`Status::BudgetExhausted`] report (the executor applies the
    /// exhaustion policy on top). An unbudgeted request passes a
    /// meterless context, which runs the legacy behavior exactly.
    fn solve(&self, req: &SolveRequest, ctx: &BudgetContext) -> SolveReport;

    /// The solution object this solver's solved reports carry (see
    /// [`SolutionForm`]); defaults to a routed flow. The executor
    /// replays whichever form is present for the simulation
    /// certificate, so overriding this is documentation — the report
    /// fields are what drive the replay.
    fn solution_form(&self) -> SolutionForm {
        SolutionForm::Routed
    }
}

/// Exhaustive search explodes past this many improvable jobs; the
/// exact solvers decline `--solver all` fan-out above it (an explicitly
/// named request still runs, however long it takes — the caller asked).
pub const EXACT_JOB_CAP: usize = 10;

/// `sp-dp`'s min-resource sweep caps the DP budget axis here.
const SP_BUDGET_CAP: u64 = 1 << 20;

/// A solved-status skeleton the adapters fill in field by field.
fn report_skeleton(req: &SolveRequest, solver: &'static str) -> SolveReport {
    SolveReport::new(req.id.clone(), solver, Status::Solved, "")
}

/// Fills a report from a certified [`ApproxSolution`].
fn report_approx(req: &SolveRequest, solver: &'static str, a: ApproxSolution) -> SolveReport {
    validate(req.prepared.arc(), &a.solution).expect("solver produced an invalid solution");
    let mut r = report_skeleton(req, solver);
    r.makespan = Some(a.solution.makespan);
    r.budget_used = Some(a.solution.budget_used);
    r.lp_makespan = Some(a.lp_makespan);
    r.lp_budget = Some(a.lp_budget);
    r.makespan_factor = Some(a.makespan_factor);
    r.resource_factor = Some(a.resource_factor);
    r.work = a.lp_pivots as u64;
    r.lp_stats = Some(a.lp_stats);
    r.solution = Some(a.solution);
    r
}

/// The failure report for a mid-solve budget exhaustion: the
/// structured reason rides on the report so the executor can apply the
/// request's exhaustion policy (reject as-is, or dispatch the degrade
/// fallback) without re-parsing the detail string.
pub(crate) fn report_exhausted(
    req: &SolveRequest,
    solver: &'static str,
    e: Exhausted,
) -> SolveReport {
    let mut r = SolveReport::new(req.id.clone(), solver, Status::BudgetExhausted, e.to_string());
    r.exhausted = Some(e);
    r
}

fn report_lp_failure(req: &SolveRequest, solver: &'static str, e: SolveError) -> SolveReport {
    let status = match &e {
        SolveError::Lp(LpError::Infeasible) => Status::Infeasible,
        // an unbounded relaxation is a modelling bug, not a property of
        // the request — report it as the solver declining, loudly
        SolveError::Lp(LpError::Unbounded) => Status::Unsupported,
        SolveError::Lp(LpError::Exhausted(e)) => return report_exhausted(req, solver, *e),
        SolveError::WrongFamily(_) => Status::Unsupported,
    };
    SolveReport::new(req.id.clone(), solver, status, e.to_string())
}

fn unsupported_objective(req: &SolveRequest, solver: &'static str) -> SolveReport {
    SolveReport::new(
        req.id.clone(),
        solver,
        Status::Unsupported,
        "this solver only handles the min-makespan objective",
    )
}

/// Sweeps are executed by the engine's curve service
/// ([`crate::solve_curve`], dispatched in `execute_one`), never by an
/// individual solver — a directly-invoked solver declines them.
fn unsupported_sweep(req: &SolveRequest, solver: &'static str) -> SolveReport {
    SolveReport::new(
        req.id.clone(),
        solver,
        Status::Unsupported,
        "budget sweeps run through the engine curve service, not a single solver",
    )
}

fn family_capability(
    arc: &ArcInstance,
    want: fn(DurationKind) -> bool,
    reason: &'static str,
) -> Capability {
    if arc
        .improvable_edges()
        .iter()
        .all(|&e| want(arc.dag().edge(e).duration.kind()))
    {
        Capability::Supported
    } else {
        Capability::Unsupported(reason)
    }
}

// ---------------------------------------------------------------------
// reuse-over-paths solvers (the paper's regime, Question 1.3)
// ---------------------------------------------------------------------

/// Exhaustive exact search (`exact`).
pub struct ExactSolver;

impl Solver for ExactSolver {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn supports(&self, arc: &ArcInstance) -> Capability {
        if arc.improvable_edges().len() <= EXACT_JOB_CAP {
            Capability::Supported
        } else {
            Capability::Unsupported("exhaustive search needs ≤ 10 improvable jobs")
        }
    }

    fn solve(&self, req: &SolveRequest, ctx: &BudgetContext) -> SolveReport {
        let arc = req.prepared.arc();
        let meter = ctx.meter();
        let mut r = report_skeleton(req, self.name());
        match req.objective {
            Objective::MakespanSweep { .. } => return unsupported_sweep(req, self.name()),
            Objective::MinMakespan { budget } => {
                let ex = match rtt_core::exact::solve_exact_metered(arc, budget, meter) {
                    Ok(ex) => ex,
                    Err(e) => return report_exhausted(req, self.name(), e),
                };
                validate(arc, &ex.solution).expect("exact produced an invalid solution");
                r.makespan = Some(ex.solution.makespan);
                r.budget_used = Some(ex.solution.budget_used);
                r.makespan_factor = Some(1.0);
                r.resource_factor = Some(1.0);
                r.work = ex.explored;
                r.solution = Some(ex.solution);
            }
            Objective::MinResource { target } => {
                match rtt_core::exact::solve_exact_min_resource_metered(arc, target, meter) {
                    Ok(Some((needed, sol))) => {
                        validate(arc, &sol).expect("exact produced an invalid solution");
                        r.makespan = Some(sol.makespan);
                        r.budget_used = Some(needed);
                        r.makespan_factor = Some(1.0);
                        r.resource_factor = Some(1.0);
                        r.solution = Some(sol);
                    }
                    Ok(None) => {
                        return SolveReport::new(
                            req.id.clone(),
                            self.name(),
                            Status::Infeasible,
                            "makespan target below the ideal makespan",
                        )
                    }
                    Err(e) => return report_exhausted(req, self.name(), e),
                }
            }
        }
        r
    }
}

/// Theorem 3.4 bi-criteria LP rounding (`bicriteria`); also serves the
/// min-resource objective through the same machinery.
pub struct BicriteriaSolver;

impl Solver for BicriteriaSolver {
    fn name(&self) -> &'static str {
        "bicriteria"
    }

    fn supports(&self, _arc: &ArcInstance) -> Capability {
        Capability::Supported
    }

    fn solve(&self, req: &SolveRequest, ctx: &BudgetContext) -> SolveReport {
        let arc = req.prepared.arc();
        let tt = req.prepared.tt();
        let meter = ctx.meter();
        let result = match req.objective {
            Objective::MakespanSweep { .. } => return unsupported_sweep(req, self.name()),
            Objective::MinMakespan { budget } => rtt_core::solvers::solve_bicriteria_metered(
                arc,
                tt,
                budget,
                req.alpha,
                rtt_lp::Engine::Revised,
                meter,
            ),
            Objective::MinResource { target } => {
                rtt_core::solvers::min_resource_metered(arc, tt, target, req.alpha, meter)
            }
        };
        match result {
            Ok(a) => report_approx(req, self.name(), a),
            Err(e) => report_lp_failure(req, self.name(), e),
        }
    }
}

/// Theorem 3.9 single-criteria 5-approximation (`kway`).
pub struct KwaySolver;

impl Solver for KwaySolver {
    fn name(&self) -> &'static str {
        "kway"
    }

    fn supports(&self, arc: &ArcInstance) -> Capability {
        family_capability(
            arc,
            |k| matches!(k, DurationKind::KWay { .. }),
            "requires k-way splitting duration functions",
        )
    }

    fn solve(&self, req: &SolveRequest, ctx: &BudgetContext) -> SolveReport {
        let Objective::MinMakespan { budget } = req.objective else {
            return unsupported_objective(req, self.name());
        };
        match rtt_core::solvers::solve_kway_5approx_metered(
            req.prepared.arc(),
            req.prepared.tt(),
            budget,
            ctx.meter(),
        ) {
            Ok(a) => report_approx(req, self.name(), a),
            Err(e) => report_lp_failure(req, self.name(), e),
        }
    }
}

/// Theorem 3.10 single-criteria 4-approximation (`recbinary`).
pub struct RecBinarySolver;

impl Solver for RecBinarySolver {
    fn name(&self) -> &'static str {
        "recbinary"
    }

    fn supports(&self, arc: &ArcInstance) -> Capability {
        family_capability(
            arc,
            |k| matches!(k, DurationKind::RecursiveBinary { .. }),
            "requires recursive-binary duration functions",
        )
    }

    fn solve(&self, req: &SolveRequest, ctx: &BudgetContext) -> SolveReport {
        let Objective::MinMakespan { budget } = req.objective else {
            return unsupported_objective(req, self.name());
        };
        match rtt_core::solvers::solve_recbinary_4approx_metered(
            req.prepared.arc(),
            req.prepared.tt(),
            budget,
            ctx.meter(),
        ) {
            Ok(a) => report_approx(req, self.name(), a),
            Err(e) => report_lp_failure(req, self.name(), e),
        }
    }
}

/// Theorem 3.16 improved (4/3, 14/5) bi-criteria (`recbinary-improved`).
pub struct RecBinaryImprovedSolver;

impl Solver for RecBinaryImprovedSolver {
    fn name(&self) -> &'static str {
        "recbinary-improved"
    }

    fn supports(&self, arc: &ArcInstance) -> Capability {
        family_capability(
            arc,
            |k| matches!(k, DurationKind::RecursiveBinary { .. }),
            "requires recursive-binary duration functions",
        )
    }

    fn solve(&self, req: &SolveRequest, ctx: &BudgetContext) -> SolveReport {
        let Objective::MinMakespan { budget } = req.objective else {
            return unsupported_objective(req, self.name());
        };
        match rtt_core::solvers::solve_recbinary_improved_metered(
            req.prepared.arc(),
            req.prepared.tt(),
            budget,
            ctx.meter(),
        ) {
            Ok(a) => report_approx(req, self.name(), a),
            Err(e) => report_lp_failure(req, self.name(), e),
        }
    }
}

/// §3.4 pseudo-polynomial exact DP for series-parallel DAGs (`sp-dp`).
pub struct SpDpSolver;

impl SpDpSolver {
    fn solved(req: &SolveRequest, name: &'static str, sol: Solution, work: u64) -> SolveReport {
        validate(req.prepared.arc(), &sol).expect("sp-dp produced an invalid solution");
        let mut r = report_skeleton(req, name);
        r.makespan = Some(sol.makespan);
        r.budget_used = Some(sol.budget_used);
        r.makespan_factor = Some(1.0);
        r.resource_factor = Some(1.0);
        r.work = work;
        r.solution = Some(sol);
        r
    }
}

impl Solver for SpDpSolver {
    fn name(&self) -> &'static str {
        "sp-dp"
    }

    fn supports(&self, arc: &ArcInstance) -> Capability {
        if rtt_dag::sp::decompose(arc.dag(), arc.source(), arc.sink()).is_some() {
            Capability::Supported
        } else {
            Capability::Unsupported("instance is not two-terminal series-parallel")
        }
    }

    fn supports_prepared(&self, prep: &crate::PreparedInstance) -> Capability {
        // reuse the cached decomposition instead of re-deriving it for
        // every request that fans out over the registry
        if prep.sp_tree().is_some() {
            Capability::Supported
        } else {
            Capability::Unsupported("instance is not two-terminal series-parallel")
        }
    }

    fn solve(&self, req: &SolveRequest, ctx: &BudgetContext) -> SolveReport {
        let arc = req.prepared.arc();
        let meter = ctx.meter();
        let Some(tree) = req.prepared.sp_tree() else {
            return SolveReport::new(
                req.id.clone(),
                self.name(),
                Status::Unsupported,
                "instance is not two-terminal series-parallel",
            );
        };
        match req.objective {
            Objective::MakespanSweep { .. } => unsupported_sweep(req, self.name()),
            Objective::MinMakespan { budget } => {
                match solve_sp_exact_with_tree_metered(arc, tree, budget, meter) {
                    Ok((sp, sol)) => {
                        let work = sp.curve.len() as u64 * tree.len() as u64;
                        Self::solved(req, self.name(), sol, work)
                    }
                    Err(e) => report_exhausted(req, self.name(), e),
                }
            }
            Objective::MinResource { target } => {
                // one DP run over the saturation budget yields the whole
                // curve; the first λ meeting the target is optimal
                let saturation = arc.saturation_budget();
                if saturation > SP_BUDGET_CAP {
                    // refusing is honest; sweeping a truncated range and
                    // calling the result "infeasible" would not be
                    return SolveReport::new(
                        req.id.clone(),
                        self.name(),
                        Status::Unsupported,
                        format!(
                            "saturation budget {saturation} exceeds the DP sweep cap {SP_BUDGET_CAP}"
                        ),
                    );
                }
                let swept = solve_sp_tree_metered(
                    tree,
                    |e| arc.dag().edge(e).duration.clone(),
                    saturation,
                    meter,
                );
                let (curve, _, _) = match swept {
                    Ok(r) => r,
                    Err(e) => return report_exhausted(req, self.name(), e),
                };
                match curve.iter().position(|&t| t <= target) {
                    Some(needed) => {
                        match solve_sp_exact_with_tree_metered(arc, tree, needed as u64, meter) {
                            Ok((sp, sol)) => {
                                let work =
                                    (curve.len() + sp.curve.len()) as u64 * tree.len() as u64;
                                Self::solved(req, self.name(), sol, work)
                            }
                            Err(e) => report_exhausted(req, self.name(), e),
                        }
                    }
                    // the saturation budget is the most that can ever
                    // help, so missing the target there is conclusive
                    None => SolveReport::new(
                        req.id.clone(),
                        self.name(),
                        Status::Infeasible,
                        "makespan target below the ideal makespan",
                    ),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// regime baselines (Questions 1.1 and 1.2)
// ---------------------------------------------------------------------

/// Exact no-reuse baseline (`noreuse-exact`, Question 1.1). Factors are
/// relative to the *no-reuse* optimum; no flow solution is attached
/// (allocations are dedicated, not routed).
pub struct NoReuseExactSolver;

impl Solver for NoReuseExactSolver {
    fn name(&self) -> &'static str {
        "noreuse-exact"
    }

    fn supports(&self, arc: &ArcInstance) -> Capability {
        if arc.improvable_edges().len() <= EXACT_JOB_CAP {
            Capability::Supported
        } else {
            Capability::Unsupported("exhaustive search needs ≤ 10 improvable jobs")
        }
    }

    fn solve(&self, req: &SolveRequest, ctx: &BudgetContext) -> SolveReport {
        let arc = req.prepared.arc();
        let meter = ctx.meter();
        let mut r = report_skeleton(req, self.name());
        match req.objective {
            Objective::MakespanSweep { .. } => return unsupported_sweep(req, self.name()),
            Objective::MinMakespan { budget } => {
                let sol = match solve_noreuse_exact_metered(arc, budget, meter) {
                    Ok(sol) => sol,
                    Err(e) => return report_exhausted(req, self.name(), e),
                };
                validate_noreuse(arc, &sol).expect("no-reuse solver produced invalid solution");
                r.makespan = Some(sol.makespan);
                r.budget_used = Some(sol.budget_used);
                r.makespan_factor = Some(1.0);
                r.resource_factor = Some(1.0);
                r.noreuse = Some(sol);
            }
            Objective::MinResource { target } => {
                match solve_noreuse_exact_min_resource_metered(arc, target, meter) {
                    Ok(Some(sol)) => {
                        validate_noreuse(arc, &sol)
                            .expect("no-reuse solver produced invalid solution");
                        r.makespan = Some(sol.makespan);
                        r.budget_used = Some(sol.budget_used);
                        r.makespan_factor = Some(1.0);
                        r.resource_factor = Some(1.0);
                        r.noreuse = Some(sol);
                    }
                    Ok(None) => {
                        return SolveReport::new(
                            req.id.clone(),
                            self.name(),
                            Status::Infeasible,
                            "makespan target below the ideal makespan",
                        )
                    }
                    Err(e) => return report_exhausted(req, self.name(), e),
                }
            }
        }
        r
    }

    fn solution_form(&self) -> SolutionForm {
        SolutionForm::NoReuse
    }
}

/// LP-rounding no-reuse baseline (`noreuse-bicriteria`, Question 1.1).
/// Factors are relative to the no-reuse optimum.
pub struct NoReuseBicriteriaSolver;

impl Solver for NoReuseBicriteriaSolver {
    fn name(&self) -> &'static str {
        "noreuse-bicriteria"
    }

    fn supports(&self, _arc: &ArcInstance) -> Capability {
        Capability::Supported
    }

    fn solve(&self, req: &SolveRequest, ctx: &BudgetContext) -> SolveReport {
        let Objective::MinMakespan { budget } = req.objective else {
            return unsupported_objective(req, self.name());
        };
        let arc = req.prepared.arc();
        match solve_noreuse_bicriteria_metered(
            arc,
            req.prepared.tt(),
            budget,
            req.alpha,
            ctx.meter(),
        ) {
            Ok(a) => {
                validate_noreuse(arc, &a.solution)
                    .expect("no-reuse solver produced invalid solution");
                let mut r = report_skeleton(req, self.name());
                r.makespan = Some(a.solution.makespan);
                r.budget_used = Some(a.solution.budget_used);
                r.lp_makespan = Some(a.lp_makespan);
                r.lp_budget = Some(a.lp_budget);
                r.makespan_factor = Some(1.0 / req.alpha);
                r.resource_factor = Some(1.0 / (1.0 - req.alpha));
                r.noreuse = Some(a.solution);
                r
            }
            Err(LpError::Infeasible) => SolveReport::new(
                req.id.clone(),
                self.name(),
                Status::Infeasible,
                "no-reuse LP infeasible",
            ),
            Err(LpError::Exhausted(e)) => report_exhausted(req, self.name(), e),
            // unbounded = modelling bug, mirrored from report_lp_failure
            Err(e) => SolveReport::new(
                req.id.clone(),
                self.name(),
                Status::Unsupported,
                e.to_string(),
            ),
        }
    }

    fn solution_form(&self) -> SolutionForm {
        SolutionForm::NoReuse
    }
}

/// Greedy global-pool baseline (`global-greedy`, Question 1.2): runs
/// both list-scheduling policies and reports the better schedule. A
/// heuristic — no factors are claimed.
pub struct GlobalGreedySolver;

impl Solver for GlobalGreedySolver {
    fn name(&self) -> &'static str {
        "global-greedy"
    }

    fn supports(&self, _arc: &ArcInstance) -> Capability {
        Capability::Supported
    }

    // the greedy list scheduler is linear in the schedule and never
    // long-running, so it stays unmetered — only its certification
    // replay (the executor's sim_events dimension) is budgeted
    fn solve(&self, req: &SolveRequest, _ctx: &BudgetContext) -> SolveReport {
        let Objective::MinMakespan { budget } = req.objective else {
            return unsupported_objective(req, self.name());
        };
        let arc = req.prepared.arc();
        let mut best: Option<rtt_core::GlobalSchedule> = None;
        for policy in [GlobalPolicy::Eager, GlobalPolicy::Patient] {
            let s = rtt_core::global_reuse_schedule(arc, budget, policy);
            verify_global_schedule(arc, budget, &s).expect("greedy schedule must verify");
            if best.as_ref().is_none_or(|b| s.makespan < b.makespan) {
                best = Some(s);
            }
        }
        let s = best.expect("two policies ran");
        let mut r = report_skeleton(req, self.name());
        r.makespan = Some(s.makespan);
        r.budget_used = Some(s.peak_in_use);
        r.schedule = Some(s);
        r
    }

    fn solution_form(&self) -> SolutionForm {
        SolutionForm::Schedule
    }
}

// ---------------------------------------------------------------------
// fault-injection fixtures (tests and the CI smoke corpus only)
// ---------------------------------------------------------------------

/// Fault-injection fixture: panics on every solve. **Not** part of
/// [`crate::Registry::standard`] — tests and the CI fault-injection
/// smoke register it explicitly (the CLI gates it behind
/// `RTT_FAULT_SOLVERS=1`) to exercise the executor's panic isolation:
/// the batch must report this solver as [`Status::Failed`] and finish
/// every other request untouched.
pub struct AlwaysPanicSolver;

impl Solver for AlwaysPanicSolver {
    fn name(&self) -> &'static str {
        "fixture-panic"
    }

    // declines the `all` fan-out so healthy requests never touch it;
    // named selection bypasses supports(), which is how tests and the
    // fault corpus invoke it
    fn supports(&self, _arc: &ArcInstance) -> Capability {
        Capability::Unsupported("fault-injection fixture: select by name")
    }

    fn solve(&self, req: &SolveRequest, _ctx: &BudgetContext) -> SolveReport {
        panic!("fixture solver panicked on request {}", req.id);
    }
}

/// Fault-injection fixture: charges `lp_pivots` in deterministic
/// 1024-unit slabs until the request's pivot budget trips, then reports
/// the exhaustion. Without an enforced pivot limit it declines instead
/// of spinning — the fixture exists to exhaust, not to stall. Not part
/// of [`crate::Registry::standard`]; see [`AlwaysPanicSolver`].
pub struct AlwaysExhaustSolver;

impl Solver for AlwaysExhaustSolver {
    fn name(&self) -> &'static str {
        "fixture-exhaust"
    }

    // like the panic fixture: reachable by name only
    fn supports(&self, _arc: &ArcInstance) -> Capability {
        Capability::Unsupported("fault-injection fixture: select by name")
    }

    fn solve(&self, req: &SolveRequest, ctx: &BudgetContext) -> SolveReport {
        let enforced = ctx
            .spec()
            .is_some_and(|s| {
                s.limits.lp_pivots.is_some()
                    && s.policies.lp_pivots != crate::budget::ExhaustionPolicy::SoftWarn
            });
        let meter = match ctx.meter() {
            Some(m) if enforced => m,
            _ => {
                return SolveReport::new(
                    req.id.clone(),
                    self.name(),
                    Status::Unsupported,
                    "fixture requires an enforced max_pivots budget",
                )
            }
        };
        // bounded: 2^20 slab charges outlast any limit the meter can
        // hold below 2^30 pivots, and the fixture never loops past them
        for _ in 0..(1u64 << 20) {
            if let Err(e) = meter.charge_lp_pivots(1024) {
                return report_exhausted(req, self.name(), e);
            }
        }
        SolveReport::new(
            req.id.clone(),
            self.name(),
            Status::Unsupported,
            "fixture pivot budget too large to exhaust (≥ 2^30)",
        )
    }
}
