//! Request-admission lint: the engine-level mirror of `rtt lint`.
//!
//! `rtt lint` judges a corpus *textually*, before any request object
//! exists; this module judges **built** [`SolveRequest`]s — the form
//! an embedding (or ROADMAP open item 1's resident gateway) submits
//! directly, skipping the NDJSON front end. Both speak
//! [`rtt_analyze::lint::Diagnostic`] and the same `RTT0xx` codes, and
//! an agreement test pins the CLI linter's request-level findings to
//! this module's, so the two seams cannot drift.
//!
//! Errors here flag requests the executor would *answer degenerately
//! without running a solver* (an empty sweep grid, an out-of-range
//! alpha); warnings flag admitted-but-vacuous declarations: a zero
//! deadline always expires at dequeue ([`crate::executor`]'s closed
//! boundary), a queue-depth bound at least the batch size can never
//! trip (positions are assigned at enqueue), and a named solver that
//! does not support its instance answers `unsupported` instead of
//! solving (family-tag mismatch).

use crate::registry::Registry;
use crate::request::{Objective, SolveRequest, SolverSelection};
use rtt_analyze::lint::{sort_diagnostics, Diagnostic};

/// Lints built requests against `registry`. `line` in each diagnostic
/// is the request's 1-based position in `requests` (matching the
/// corpus line only for blank-line-free corpora; the CLI linter keeps
/// true line numbers).
pub fn lint_requests(registry: &Registry, requests: &[SolveRequest]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, req) in requests.iter().enumerate() {
        let line = i + 1;
        if !(req.alpha > 0.0 && req.alpha < 1.0) {
            diags.push(Diagnostic::error(
                "RTT010",
                line,
                format!("alpha must be in (0, 1), got {}", req.alpha),
            ));
        }
        if let Objective::MakespanSweep { budgets } = &req.objective {
            if budgets.is_empty() {
                diags.push(Diagnostic::error(
                    "RTT007",
                    line,
                    "`budgets` must name at least one grid point",
                ));
            }
        }
        if req.deadline == Some(std::time::Duration::ZERO) {
            diags.push(Diagnostic::warning(
                "RTT011",
                line,
                "deadline_ms 0: the request always expires at dequeue",
            ));
        }
        if let Some(spec) = req.budget {
            if let Some(limit) = spec.limits.queue_depth {
                if limit >= requests.len() as u64 {
                    diags.push(Diagnostic::warning(
                        "RTT012",
                        line,
                        format!(
                            "max_queue_depth {limit} can never trip in a batch of {}",
                            requests.len()
                        ),
                    ));
                }
            }
        }
        if let SolverSelection::Named(name) = &req.solver {
            // fixture solvers decline every instance by design; a
            // mismatch warning for them would flag the fault corpora
            if !name.starts_with("fixture-") {
                if let Some(s) = registry.resolve(name) {
                    if let crate::solver::Capability::Unsupported(reason) =
                        s.supports_prepared(&req.prepared)
                    {
                        diags.push(Diagnostic::warning(
                            "RTT013",
                            line,
                            format!("solver {:?} does not support this instance: {reason}", name),
                        ));
                    }
                }
            }
        }
    }
    sort_diagnostics(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{BudgetLimits, BudgetPolicies, BudgetSpec};
    use crate::prep::PreparedInstance;
    use rtt_analyze::lint::{has_errors, Severity};
    use rtt_core::instance::Activity;
    use rtt_core::ArcInstance;
    use rtt_dag::Dag;
    use rtt_duration::Duration;
    use std::sync::Arc;

    fn chain_prep() -> Arc<PreparedInstance> {
        let mut g: Dag<(), Activity> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, Activity::new(Duration::two_point(10, 4, 1)))
            .unwrap();
        Arc::new(PreparedInstance::new(ArcInstance::new(g).unwrap()))
    }

    #[test]
    fn clean_requests_produce_no_diagnostics() {
        let registry = Registry::standard();
        let reqs = vec![
            SolveRequest::min_makespan("a", chain_prep(), 4),
            SolveRequest::min_makespan("b", chain_prep(), 2).with_solver("bicriteria"),
        ];
        assert!(lint_requests(&registry, &reqs).is_empty());
    }

    #[test]
    fn degenerate_fields_warn_with_positions() {
        let registry = Registry::standard();
        let mut zero_deadline = SolveRequest::min_makespan("z", chain_prep(), 4);
        zero_deadline.deadline = Some(std::time::Duration::ZERO);
        let mut vacuous_queue = SolveRequest::min_makespan("q", chain_prep(), 4);
        vacuous_queue.budget = Some(BudgetSpec {
            limits: BudgetLimits {
                queue_depth: Some(10),
                ..Default::default()
            },
            policies: BudgetPolicies::default(),
        });
        let mismatch = SolveRequest::min_makespan("m", chain_prep(), 4).with_solver("kway");
        let reqs = vec![zero_deadline, vacuous_queue, mismatch];
        let diags = lint_requests(&registry, &reqs);
        assert_eq!(
            diags
                .iter()
                .map(|d| (d.line, d.code))
                .collect::<Vec<_>>(),
            vec![(1, "RTT011"), (2, "RTT012"), (3, "RTT013")]
        );
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
        assert!(!has_errors(&diags));
    }

    #[test]
    fn degenerate_requests_error() {
        let registry = Registry::standard();
        let mut bad_alpha = SolveRequest::min_makespan("a", chain_prep(), 4);
        bad_alpha.alpha = 1.5;
        let empty_sweep = SolveRequest::sweep("s", chain_prep(), vec![]);
        let diags = lint_requests(&registry, &[bad_alpha, empty_sweep]);
        assert_eq!(
            diags.iter().map(|d| d.code).collect::<Vec<_>>(),
            vec!["RTT010", "RTT007"]
        );
        assert!(has_errors(&diags));
    }

    #[test]
    fn tight_queue_depth_does_not_warn() {
        let registry = Registry::standard();
        let mut bounded = SolveRequest::min_makespan("q", chain_prep(), 4);
        bounded.budget = Some(BudgetSpec {
            limits: BudgetLimits {
                queue_depth: Some(1),
                ..Default::default()
            },
            policies: BudgetPolicies::default(),
        });
        let reqs = vec![
            SolveRequest::min_makespan("a", chain_prep(), 4),
            bounded,
        ];
        assert!(lint_requests(&registry, &reqs).is_empty());
    }
}
