//! The solver registry: every algorithm in the repo, enumerable and
//! addressable by name. The CLI's `--solver` dispatch, the batch
//! executor's `all` fan-out, and the registry-wide property tests all
//! walk this one list — there is no other dispatch table.

use crate::solver::{
    BicriteriaSolver, Capability, ExactSolver, GlobalGreedySolver, KwaySolver,
    NoReuseBicriteriaSolver, NoReuseExactSolver, RecBinaryImprovedSolver, RecBinarySolver,
    Solver, SpDpSolver,
};
use rtt_core::ArcInstance;

/// An ordered collection of registered solvers.
pub struct Registry {
    solvers: Vec<Box<dyn Solver>>,
}

impl Registry {
    /// An empty registry (for embedding custom solver sets).
    pub fn new() -> Self {
        Registry {
            solvers: Vec::new(),
        }
    }

    /// The standard registry: every solver the repo ships, in the order
    /// reports are emitted by `--solver all`.
    pub fn standard() -> Self {
        let mut r = Registry::new();
        r.register(Box::new(ExactSolver));
        r.register(Box::new(BicriteriaSolver));
        r.register(Box::new(KwaySolver));
        r.register(Box::new(RecBinarySolver));
        r.register(Box::new(RecBinaryImprovedSolver));
        r.register(Box::new(SpDpSolver));
        r.register(Box::new(NoReuseExactSolver));
        r.register(Box::new(NoReuseBicriteriaSolver));
        r.register(Box::new(GlobalGreedySolver));
        r
    }

    /// Appends a solver. Panics on a duplicate name: names are the
    /// dispatch keys, so a collision is a programming error.
    pub fn register(&mut self, solver: Box<dyn Solver>) {
        assert!(
            self.get(solver.name()).is_none(),
            "duplicate solver name {:?}",
            solver.name()
        );
        self.solvers.push(solver);
    }

    /// Looks a solver up by canonical name (aliases are *not* applied;
    /// see [`Registry::resolve`]).
    pub fn get(&self, name: &str) -> Option<&dyn Solver> {
        self.solvers
            .iter()
            .map(|s| s.as_ref())
            .find(|s| s.name() == name)
    }

    /// Looks a solver up by canonical name or historical CLI alias
    /// (`improved` → `recbinary-improved`, `sp` → `sp-dp`).
    pub fn resolve(&self, name: &str) -> Option<&dyn Solver> {
        self.get(canonical_name(name))
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.solvers.iter().map(|s| s.name()).collect()
    }

    /// Iterates over the registered solvers in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Solver> {
        self.solvers.iter().map(|s| s.as_ref())
    }

    /// The solvers that support `arc`, in registration order.
    pub fn supporting<'a>(&'a self, arc: &ArcInstance) -> Vec<&'a dyn Solver> {
        self.iter()
            .filter(|s| matches!(s.supports(arc), Capability::Supported))
            .collect()
    }

    /// [`Registry::supporting`] through the shared preprocessing, so
    /// capability checks hit cached artifacts (the batch executor's
    /// `all` fan-out uses this).
    pub fn supporting_prepared<'a>(
        &'a self,
        prep: &crate::PreparedInstance,
    ) -> Vec<&'a dyn Solver> {
        self.iter()
            .filter(|s| matches!(s.supports_prepared(prep), Capability::Supported))
            .collect()
    }

    /// Number of registered solvers.
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Maps historical CLI solver names onto registry names; canonical
/// names pass through unchanged.
pub fn canonical_name(name: &str) -> &str {
    match name {
        "improved" => "recbinary-improved",
        "sp" => "sp-dp",
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_every_pipeline() {
        let r = Registry::standard();
        assert_eq!(
            r.names(),
            vec![
                "exact",
                "bicriteria",
                "kway",
                "recbinary",
                "recbinary-improved",
                "sp-dp",
                "noreuse-exact",
                "noreuse-bicriteria",
                "global-greedy",
            ]
        );
        assert_eq!(r.len(), 9);
    }

    #[test]
    fn aliases_resolve() {
        let r = Registry::standard();
        assert_eq!(r.resolve("improved").unwrap().name(), "recbinary-improved");
        assert_eq!(r.resolve("sp").unwrap().name(), "sp-dp");
        assert_eq!(r.resolve("exact").unwrap().name(), "exact");
        assert!(r.resolve("nonsense").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate solver name")]
    fn duplicate_names_rejected() {
        let mut r = Registry::standard();
        r.register(Box::new(crate::solver::ExactSolver));
    }
}
