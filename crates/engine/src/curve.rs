//! The tradeoff-curve service: LP 6–10 at every budget of a grid,
//! solved as **one warm-started chain**.
//!
//! This is the paper's actual object of study — the resource-time
//! tradeoff *curve* — served as a first-class request instead of
//! `|grid|` independent solves. The first point solves cold; every
//! later point rewrites the budget row's RHS and dual-reoptimizes from
//! the previous optimal basis (see `rtt_lp::revised`), which on fine
//! grids collapses per-point cost to a handful of pivots
//! (`BENCH_pr3.json` quantifies it). Each LP point is then α-rounded
//! and min-flow routed through the same certified Theorem 3.4 stage as
//! a single `bicriteria` solve, and validated before reporting.
//!
//! # Warm sources, and which callers may use which
//!
//! The chain's starting basis can come from three places, and the
//! split is a *wire-determinism* rule, not an implementation accident:
//!
//! * **per-instance slot** ([`crate::prep::LpWarmState`], the
//!   [`solve_curve`] API and `rtt curve`): a later sweep on the same
//!   instance warm-starts across calls — pivot counts then depend on
//!   call history, which is fine for an API whose caller owns that
//!   history;
//! * **shared warm tier** ([`solve_curve_cached`] with a
//!   [`crate::reuse::ReuseCache`]): shape-keyed, so a
//!   duration-perturbed sibling's basis seeds this chain too
//!   (`accepts_basis`-verified at install);
//! * **none** ([`execute_sweep_wire`], the batch executor's dispatch
//!   target): the chain crash-starts deterministically, so its pivot
//!   counts — which ride the wire as `work` — are a pure function of
//!   the request line. The final basis is still parked (cost for later
//!   API callers, never bytes). Cross-request reuse for wire sweeps
//!   rides the *solution tier* instead, which replays whole report
//!   vectors byte-identically.

use crate::budget::BudgetContext;
use crate::prep::PreparedInstance;
use crate::request::{SolveRequest, SolveReport, Status};
use rtt_budget::BudgetMeter;
use rtt_core::lp_build::LpError;
use rtt_core::{validate, Resource, Solution};

/// One point of the tradeoff curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// The grid budget this point was solved at.
    pub budget: Resource,
    /// The LP relaxation's makespan (the curve's lower envelope).
    pub lp_makespan: f64,
    /// The LP relaxation's source outflow.
    pub lp_budget: f64,
    /// Rounded integral makespan (Theorem 3.4, `≤ lp_makespan/α`).
    pub makespan: rtt_core::Time,
    /// Rounded integral budget (`≤ budget/(1−α)`).
    pub budget_used: Resource,
    /// Simplex pivots this point cost — for warm points, the dual
    /// reoptimization plus the primal polish.
    pub pivots: usize,
    /// Whether this point reused the previous point's basis.
    pub warm: bool,
    /// Observation 1.1 certificate: the rounded solution's reducer
    /// expansion simulated within `makespan` (see [`crate::certify`]).
    pub sim: Option<crate::certify::SimCertificate>,
    /// The rounded routed solution itself — carried so sweep reports
    /// can be re-validated and re-certified on a solution-tier replay
    /// (and spilled/reloaded by the persistent cache).
    pub solution: Solution,
}

/// Where a curve chain's starting basis comes from (see module docs).
enum WarmSource<'a> {
    /// The per-instance slot: warm across calls on the same prep.
    Slot,
    /// The shared shape-keyed warm tier of a reuse cache.
    Shared(&'a crate::reuse::ReuseCache),
    /// No starting basis: a deterministic crash-started chain whose
    /// pivot counts depend only on (instance, grid). The template is
    /// still taken from / parked back into the per-instance slot —
    /// that trades build cost only.
    Cold,
}

/// Solves the tradeoff curve for `prep` over `budgets` (in order) at
/// rounding parameter `alpha`. One warm chain; per-point results carry
/// both the LP envelope and the certified rounded solution.
pub fn solve_curve(
    prep: &PreparedInstance,
    budgets: &[Resource],
    alpha: f64,
) -> Result<Vec<CurvePoint>, LpError> {
    solve_curve_metered(prep, budgets, alpha, None)
}

/// [`solve_curve`] under a cooperative budget meter: the warm LP chain
/// charges `lp_pivots` and each point's certification replay charges
/// `sim_events`; exhaustion surfaces as [`LpError::Exhausted`] with the
/// warm state already parked.
pub fn solve_curve_metered(
    prep: &PreparedInstance,
    budgets: &[Resource],
    alpha: f64,
    meter: Option<&BudgetMeter>,
) -> Result<Vec<CurvePoint>, LpError> {
    solve_points(prep, budgets, alpha, meter, WarmSource::Slot)
}

/// [`solve_curve_metered`] with an optional cross-request
/// [`crate::reuse::ReuseCache`]: the warm LP state (template + basis)
/// is taken from and parked back into the cache's **shared warm tier**
/// — keyed by instance *shape*, so a duration-perturbed sibling's basis
/// seeds this chain too — instead of the per-instance slot. With
/// `None` this is exactly the historical per-instance behavior, byte
/// for byte (`rtt curve` passes `None`, pinning its golden).
///
/// This entry point serves API callers that own their call history;
/// the batch wire goes through [`execute_sweep_wire`] instead, which
/// never reads warm state (see the module docs).
pub fn solve_curve_cached(
    prep: &PreparedInstance,
    budgets: &[Resource],
    alpha: f64,
    meter: Option<&BudgetMeter>,
    reuse: Option<&crate::reuse::ReuseCache>,
) -> Result<Vec<CurvePoint>, LpError> {
    let warm = match reuse {
        Some(cache) => WarmSource::Shared(cache),
        None => WarmSource::Slot,
    };
    solve_points(prep, budgets, alpha, meter, warm)
}

/// The shared chain body behind every curve entry point: resolve the
/// warm source, run one `solve_sweep_metered` chain, park the final
/// basis, round + validate + certify each point.
fn solve_points(
    prep: &PreparedInstance,
    budgets: &[Resource],
    alpha: f64,
    meter: Option<&BudgetMeter>,
    warm: WarmSource<'_>,
) -> Result<Vec<CurvePoint>, LpError> {
    let arc = prep.arc();
    let tt = prep.tt();
    let (mut state, start) = match &warm {
        WarmSource::Slot => {
            let state = prep.take_lp_warm();
            let start = state.basis.clone();
            (state, start)
        }
        WarmSource::Cold => (prep.take_lp_warm(), None),
        WarmSource::Shared(cache) => match cache.take_warm(&prep.shape().key) {
            Some(entry) if entry.canonical == prep.canonical().key => {
                let start = entry.state.basis.clone();
                (entry.state, start)
            }
            Some(entry) => {
                // shape sibling: rebuild our template, cross its basis
                // over (install-verified; see crate::reuse)
                let state = prep.take_lp_warm();
                let start = entry
                    .state
                    .basis
                    .filter(|b| state.lp.accepts_basis(b));
                (state, start)
            }
            None => {
                let state = prep.take_lp_warm();
                let start = state.basis.clone();
                (state, start)
            }
        },
    };
    let had_basis = start.is_some();
    if had_basis {
        if let WarmSource::Shared(cache) = &warm {
            cache.note_delta();
        }
    }
    let swept = state.lp.solve_sweep_metered(tt, budgets, start.as_ref(), meter);
    let park = |state: crate::prep::LpWarmState| match &warm {
        WarmSource::Shared(cache) => cache.put_warm(
            prep.shape().key.clone(),
            crate::reuse::WarmEntry {
                canonical: prep.canonical().key.clone(),
                state,
            },
        ),
        WarmSource::Slot | WarmSource::Cold => prep.put_lp_warm(state),
    };
    let (points, basis) = match swept {
        Ok(r) => r,
        Err(e) => {
            // park the template (basis cleared) before reporting
            state.basis = None;
            park(state);
            return Err(e);
        }
    };
    state.basis = basis;
    park(state);
    let mut out = Vec::with_capacity(budgets.len());
    for (i, (frac, &budget)) in points.into_iter().zip(budgets).enumerate() {
        let pivots = frac.pivots;
        let (lp_makespan, lp_budget) = (frac.makespan, frac.budget_used);
        let approx = rtt_core::bicriteria_round_prepped(arc, tt, frac, alpha);
        validate(arc, &approx.solution).expect("curve rounding produced an invalid solution");
        let sim = crate::certify::certify_solution_metered(arc, &approx.solution, meter)
            .map_err(LpError::Exhausted)?;
        if let Some(cert) = &sim {
            assert!(
                cert.holds(),
                "Observation 1.1 violated on curve point (budget {budget}): \
                 simulated {} > makespan {}",
                cert.simulated,
                cert.bound
            );
        }
        out.push(CurvePoint {
            budget,
            lp_makespan,
            lp_budget,
            makespan: approx.solution.makespan,
            budget_used: approx.solution.budget_used,
            pivots,
            warm: i > 0 || had_basis,
            sim,
            solution: approx.solution,
        });
    }
    Ok(out)
}

/// Maps a curve result onto per-point [`SolveReport`]s (one per budget,
/// in grid order) — or the single whole-request failure report the
/// sweep semantics call for.
fn point_reports(
    req: &SolveRequest,
    result: Result<Vec<CurvePoint>, LpError>,
) -> Vec<SolveReport> {
    const SOLVER: &str = "bicriteria";
    match result {
        Ok(points) => points
            .into_iter()
            .map(|p| {
                let mut r = SolveReport::new(req.id.clone(), SOLVER, Status::Solved, "");
                r.makespan = Some(p.makespan);
                r.budget_used = Some(p.budget_used);
                r.lp_makespan = Some(p.lp_makespan);
                r.lp_budget = Some(p.lp_budget);
                r.makespan_factor = Some(1.0 / req.alpha);
                r.resource_factor = Some(1.0 / (1.0 - req.alpha));
                r.work = p.pivots as u64;
                r.sim = p.sim;
                r.sweep_budget = Some(p.budget);
                // carried so a solution-tier replay (and the persistent
                // cache) can re-validate and re-certify this point
                r.solution = Some(p.solution);
                r
            })
            .collect(),
        Err(LpError::Infeasible) => vec![SolveReport::new(
            req.id.clone(),
            SOLVER,
            Status::Infeasible,
            "curve LP infeasible",
        )],
        // a whole-curve exhaustion is one failure report: the chain is
        // a single request-level computation, not per-point solves
        Err(LpError::Exhausted(e)) => vec![crate::solver::report_exhausted(req, SOLVER, e)],
        Err(e) => vec![SolveReport::new(
            req.id.clone(),
            SOLVER,
            Status::Unsupported,
            e.to_string(),
        )],
    }
}

/// Expands a sweep request into per-point [`SolveReport`]s — the
/// executor's dispatch target for unbudgeted, deadline-free
/// [`crate::Objective::MakespanSweep`] requests on the batch wire.
///
/// One **self-contained** chain: crash start, then per-point delta
/// reoptimization. No warm state is read, so `work` (on the wire) is a
/// pure function of the request line — byte-identical across thread
/// counts, cache modes, and restarts. The chain's final basis is
/// parked on the per-instance slot for later API callers (cost only).
pub fn execute_sweep_wire(
    req: &SolveRequest,
    budgets: &[Resource],
    ctx: &BudgetContext,
) -> Vec<SolveReport> {
    point_reports(
        req,
        solve_points(&req.prepared, budgets, req.alpha, ctx.meter(), WarmSource::Cold),
    )
}

/// The degraded dispatch target for **budgeted or deadlined** sweep
/// requests: every grid point solved as an independent crash-started
/// single-point chain, metered on the shared request meter, with no
/// reuse of any kind — so a `max_*` budget's wire-visible `consumed`
/// counters can never depend on cache timing (the same rule that keeps
/// those requests out of the solution tier). Exhaustion anywhere
/// surfaces as the whole-request failure report, like the chained
/// path.
pub fn execute_sweep_pointwise(
    req: &SolveRequest,
    budgets: &[Resource],
    ctx: &BudgetContext,
) -> Vec<SolveReport> {
    let mut points = Vec::with_capacity(budgets.len());
    for &b in budgets {
        match solve_points(&req.prepared, &[b], req.alpha, ctx.meter(), WarmSource::Cold) {
            Ok(mut p) => points.append(&mut p),
            Err(e) => return point_reports(req, Err(e)),
        }
    }
    point_reports(req, Ok(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_core::instance::Activity;
    use rtt_core::ArcInstance;
    use rtt_dag::Dag;
    use rtt_duration::Duration;

    fn chain() -> ArcInstance {
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, Activity::new(Duration::two_point(10, 4, 0)))
            .unwrap();
        g.add_edge(a, t, Activity::new(Duration::two_point(8, 4, 2)))
            .unwrap();
        ArcInstance::new(g).unwrap()
    }

    #[test]
    fn curve_is_monotone_and_matches_single_solves() {
        let prep = PreparedInstance::new(chain());
        let budgets: Vec<u64> = (0..=8).collect();
        let points = solve_curve(&prep, &budgets, 0.5).unwrap();
        assert_eq!(points.len(), budgets.len());
        assert!(!points[0].warm, "first point is cold");
        assert!(points[1..].iter().all(|p| p.warm), "rest warm-chain");
        let mut prev = f64::INFINITY;
        for p in &points {
            assert!(p.lp_makespan <= prev + 1e-9, "LP curve non-increasing");
            prev = p.lp_makespan;
            let cold =
                rtt_core::lp_build::solve_min_makespan_lp(prep.tt(), p.budget).unwrap();
            assert!(
                (p.lp_makespan - cold.makespan).abs() < 1e-9,
                "budget {}: warm {} vs cold {}",
                p.budget,
                p.lp_makespan,
                cold.makespan
            );
        }
    }

    #[test]
    fn budget_zero_point_is_the_zero_resource_point() {
        // B = 0 is defined behavior end to end (the curve goldens pin
        // it on the wire): LP 6–10 with a zero budget row is feasible
        // with no flow, and the rounded point reports the base makespan
        // at zero budget used.
        let arc = chain();
        let base = arc.base_makespan();
        let prep = PreparedInstance::new(arc);
        let points = solve_curve(&prep, &[0], 0.5).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].makespan, base);
        assert_eq!(points[0].budget_used, 0);
        assert!((points[0].lp_makespan - base as f64).abs() < 1e-9);
        let sim = points[0].sim.expect("zero-budget point certifies");
        assert_eq!(sim.simulated, base, "chains cannot pipeline");
    }

    #[test]
    fn budget_zero_anchor_certifies_for_the_regime_baselines_too() {
        // the PR-4 regression above pins the routed zero-resource
        // anchor; since PR 5 the no-reuse and global-pool pipelines
        // anchor there with a certificate of their own
        let arc = chain();
        let base = arc.base_makespan();
        let registry = crate::Registry::standard();
        let prep = std::sync::Arc::new(PreparedInstance::new(arc));
        for name in ["noreuse-exact", "noreuse-bicriteria", "global-greedy"] {
            let req = crate::SolveRequest::min_makespan("b0", std::sync::Arc::clone(&prep), 0)
                .with_solver(name);
            let reports =
                crate::execute_one(&registry, &req, std::time::Instant::now());
            let r = &reports[0];
            assert_eq!(r.status, Status::Solved, "{name}: {}", r.detail);
            assert_eq!(r.makespan, Some(base), "{name}");
            let cert = r.sim.unwrap_or_else(|| panic!("{name}: anchor uncertified"));
            assert_eq!(cert.bound, base, "{name}");
            assert_eq!(cert.simulated, base, "{name}: chains cannot pipeline");
        }
    }

    #[test]
    fn second_sweep_reuses_the_cached_basis() {
        let prep = PreparedInstance::new(chain());
        let budgets: Vec<u64> = (0..=4).collect();
        let first = solve_curve(&prep, &budgets, 0.5).unwrap();
        let second = solve_curve(&prep, &budgets, 0.5).unwrap();
        assert!(
            second[0].warm,
            "the cached basis must warm even the first point of a later sweep"
        );
        for (a, b) in first.iter().zip(&second) {
            assert!((a.lp_makespan - b.lp_makespan).abs() < 1e-9);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.budget_used, b.budget_used);
        }
    }

    #[test]
    fn wire_sweep_ignores_parked_warm_state() {
        // the wire path must crash-start even when the slot holds a
        // basis: its pivot counts are on the wire, so they may depend
        // on nothing but the request line
        let prep = std::sync::Arc::new(PreparedInstance::new(chain()));
        let budgets: Vec<u64> = (0..=4).collect();
        let req = SolveRequest::sweep("w", std::sync::Arc::clone(&prep), budgets.clone());
        let ctx = BudgetContext::for_request(&req, std::time::Instant::now());
        let first = execute_sweep_wire(&req, &budgets, &ctx);
        // the first call parked a basis; a second wire call must still
        // report identical per-point work
        let second = execute_sweep_wire(&req, &budgets, &ctx);
        let works = |rs: &[SolveReport]| rs.iter().map(|r| r.work).collect::<Vec<_>>();
        assert_eq!(works(&first), works(&second));
        assert!(first.iter().all(|r| r.status == Status::Solved));
        assert!(first.iter().all(|r| r.sweep_budget.is_some()));
        assert!(first.iter().all(|r| r.solution.is_some()));
        assert!(first.iter().all(|r| r.sim.is_some()));
    }

    #[test]
    fn pointwise_sweep_matches_independent_cold_solves() {
        // satellite 2: the degraded path a budgeted sweep takes must
        // cost exactly what per-point cold solves cost — no chaining,
        // no warm state, nothing cache-timing-dependent
        let prep = std::sync::Arc::new(PreparedInstance::new(chain()));
        let budgets: Vec<u64> = (0..=4).collect();
        let req = SolveRequest::sweep("p", std::sync::Arc::clone(&prep), budgets.clone());
        let ctx = BudgetContext::for_request(&req, std::time::Instant::now());
        let reports = execute_sweep_pointwise(&req, &budgets, &ctx);
        assert_eq!(reports.len(), budgets.len());
        for (r, &b) in reports.iter().zip(&budgets) {
            let cold = rtt_core::lp_build::solve_min_makespan_lp_with(
                prep.tt(),
                b,
                rtt_lp::Engine::Revised,
            )
            .unwrap();
            assert_eq!(r.work, cold.pivots as u64, "budget {b}");
            assert_eq!(r.sweep_budget, Some(b));
        }
        // and the answers agree with the chained path point for point
        let chained = execute_sweep_wire(&req, &budgets, &ctx);
        for (p, c) in reports.iter().zip(&chained) {
            assert_eq!(p.makespan, c.makespan);
            assert_eq!(p.budget_used, c.budget_used);
            assert_eq!(p.sim.map(|s| s.simulated), c.sim.map(|s| s.simulated));
        }
    }
}
