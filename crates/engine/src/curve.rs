//! The tradeoff-curve service: LP 6–10 at every budget of a grid,
//! solved as **one warm-started chain**.
//!
//! This is the paper's actual object of study — the resource-time
//! tradeoff *curve* — served as a first-class request instead of
//! `|grid|` independent solves. The first point solves cold; every
//! later point rewrites the budget row's RHS and dual-reoptimizes from
//! the previous optimal basis (see `rtt_lp::revised`), which on fine
//! grids collapses per-point cost to a handful of pivots
//! (`BENCH_pr3.json` quantifies it). Each LP point is then α-rounded
//! and min-flow routed through the same certified Theorem 3.4 stage as
//! a single `bicriteria` solve, and validated before reporting.
//!
//! The chain's final basis is parked on the [`PreparedInstance`]
//! ([`crate::prep::LpWarmState`]), so a later sweep on the same
//! instance warm-starts across requests too.

use crate::budget::BudgetContext;
use crate::prep::PreparedInstance;
use crate::request::{SolveRequest, SolveReport, Status};
use rtt_budget::BudgetMeter;
use rtt_core::lp_build::LpError;
use rtt_core::{validate, Resource};

/// One point of the tradeoff curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// The grid budget this point was solved at.
    pub budget: Resource,
    /// The LP relaxation's makespan (the curve's lower envelope).
    pub lp_makespan: f64,
    /// The LP relaxation's source outflow.
    pub lp_budget: f64,
    /// Rounded integral makespan (Theorem 3.4, `≤ lp_makespan/α`).
    pub makespan: rtt_core::Time,
    /// Rounded integral budget (`≤ budget/(1−α)`).
    pub budget_used: Resource,
    /// Simplex pivots this point cost — for warm points, the dual
    /// reoptimization plus the primal polish.
    pub pivots: usize,
    /// Whether this point reused the previous point's basis.
    pub warm: bool,
    /// Observation 1.1 certificate: the rounded solution's reducer
    /// expansion simulated within `makespan` (see [`crate::certify`]).
    pub sim: Option<crate::certify::SimCertificate>,
}

/// Solves the tradeoff curve for `prep` over `budgets` (in order) at
/// rounding parameter `alpha`. One warm chain; per-point results carry
/// both the LP envelope and the certified rounded solution.
pub fn solve_curve(
    prep: &PreparedInstance,
    budgets: &[Resource],
    alpha: f64,
) -> Result<Vec<CurvePoint>, LpError> {
    solve_curve_metered(prep, budgets, alpha, None)
}

/// [`solve_curve`] under a cooperative budget meter: the warm LP chain
/// charges `lp_pivots` and each point's certification replay charges
/// `sim_events`; exhaustion surfaces as [`LpError::Exhausted`] with the
/// warm state already parked.
pub fn solve_curve_metered(
    prep: &PreparedInstance,
    budgets: &[Resource],
    alpha: f64,
    meter: Option<&BudgetMeter>,
) -> Result<Vec<CurvePoint>, LpError> {
    solve_curve_cached(prep, budgets, alpha, meter, None)
}

/// [`solve_curve_metered`] with an optional cross-request
/// [`crate::reuse::ReuseCache`]: the warm LP state (template + basis)
/// is taken from and parked back into the cache's **shared warm tier**
/// — keyed by instance *shape*, so a duration-perturbed sibling's basis
/// seeds this chain too — instead of the per-instance slot. With
/// `None` this is exactly the historical per-instance behavior, byte
/// for byte (`rtt curve` passes `None`, pinning its golden).
pub fn solve_curve_cached(
    prep: &PreparedInstance,
    budgets: &[Resource],
    alpha: f64,
    meter: Option<&BudgetMeter>,
    reuse: Option<&crate::reuse::ReuseCache>,
) -> Result<Vec<CurvePoint>, LpError> {
    let arc = prep.arc();
    let tt = prep.tt();
    // resolve the warm source: shared tier (shape-keyed) when a cache
    // is present, the per-instance slot otherwise
    let (mut state, start, cross) = match reuse {
        None => {
            let state = prep.take_lp_warm();
            let start = state.basis.clone();
            (state, start, false)
        }
        Some(cache) => match cache.take_warm(&prep.shape().key) {
            Some(entry) if entry.canonical == prep.canonical().key => {
                let start = entry.state.basis.clone();
                (entry.state, start, false)
            }
            Some(entry) => {
                // shape sibling: rebuild our template, cross its basis
                // over (install-verified; see crate::reuse)
                let state = prep.take_lp_warm();
                let start = entry
                    .state
                    .basis
                    .filter(|b| state.lp.accepts_basis(b));
                (state, start, true)
            }
            None => {
                let state = prep.take_lp_warm();
                let start = state.basis.clone();
                (state, start, false)
            }
        },
    };
    let had_basis = start.is_some();
    if had_basis && (cross || reuse.is_some()) {
        if let Some(cache) = reuse {
            cache.note_delta();
        }
    }
    let swept = state.lp.solve_sweep_metered(tt, budgets, start.as_ref(), meter);
    let park = |state: crate::prep::LpWarmState| match reuse {
        Some(cache) => cache.put_warm(
            prep.shape().key.clone(),
            crate::reuse::WarmEntry {
                canonical: prep.canonical().key.clone(),
                state,
            },
        ),
        None => prep.put_lp_warm(state),
    };
    let (points, basis) = match swept {
        Ok(r) => r,
        Err(e) => {
            // park the template (basis cleared) before reporting
            state.basis = None;
            park(state);
            return Err(e);
        }
    };
    state.basis = basis;
    park(state);
    let mut out = Vec::with_capacity(budgets.len());
    for (i, (frac, &budget)) in points.into_iter().zip(budgets).enumerate() {
        let pivots = frac.pivots;
        let (lp_makespan, lp_budget) = (frac.makespan, frac.budget_used);
        let approx = rtt_core::bicriteria_round_prepped(arc, tt, frac, alpha);
        validate(arc, &approx.solution).expect("curve rounding produced an invalid solution");
        let sim = crate::certify::certify_solution_metered(arc, &approx.solution, meter)
            .map_err(LpError::Exhausted)?;
        if let Some(cert) = &sim {
            assert!(
                cert.holds(),
                "Observation 1.1 violated on curve point (budget {budget}): \
                 simulated {} > makespan {}",
                cert.simulated,
                cert.bound
            );
        }
        out.push(CurvePoint {
            budget,
            lp_makespan,
            lp_budget,
            makespan: approx.solution.makespan,
            budget_used: approx.solution.budget_used,
            pivots,
            warm: i > 0 || had_basis,
            sim,
        });
    }
    Ok(out)
}

/// Expands a sweep request into per-point [`SolveReport`]s (one per
/// budget, in grid order) — the executor's dispatch target for
/// [`crate::Objective::MakespanSweep`].
pub fn execute_sweep(
    req: &SolveRequest,
    budgets: &[Resource],
    ctx: &BudgetContext,
) -> Vec<SolveReport> {
    execute_sweep_cached(req, budgets, ctx, None)
}

/// [`execute_sweep`] routed through an optional shared
/// [`crate::reuse::ReuseCache`] (see [`solve_curve_cached`]).
pub fn execute_sweep_cached(
    req: &SolveRequest,
    budgets: &[Resource],
    ctx: &BudgetContext,
    reuse: Option<&crate::reuse::ReuseCache>,
) -> Vec<SolveReport> {
    const SOLVER: &str = "bicriteria";
    match solve_curve_cached(&req.prepared, budgets, req.alpha, ctx.meter(), reuse) {
        Ok(points) => points
            .into_iter()
            .map(|p| {
                let mut r = SolveReport::new(req.id.clone(), SOLVER, Status::Solved, "");
                r.makespan = Some(p.makespan);
                r.budget_used = Some(p.budget_used);
                r.lp_makespan = Some(p.lp_makespan);
                r.lp_budget = Some(p.lp_budget);
                r.makespan_factor = Some(1.0 / req.alpha);
                r.resource_factor = Some(1.0 / (1.0 - req.alpha));
                r.work = p.pivots as u64;
                r.sim = p.sim;
                r
            })
            .collect(),
        Err(LpError::Infeasible) => vec![SolveReport::new(
            req.id.clone(),
            SOLVER,
            Status::Infeasible,
            "curve LP infeasible",
        )],
        // a whole-curve exhaustion is one failure report: the chain is
        // a single request-level computation, not per-point solves
        Err(LpError::Exhausted(e)) => vec![crate::solver::report_exhausted(req, SOLVER, e)],
        Err(e) => vec![SolveReport::new(
            req.id.clone(),
            SOLVER,
            Status::Unsupported,
            e.to_string(),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_core::instance::Activity;
    use rtt_core::ArcInstance;
    use rtt_dag::Dag;
    use rtt_duration::Duration;

    fn chain() -> ArcInstance {
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, Activity::new(Duration::two_point(10, 4, 0)))
            .unwrap();
        g.add_edge(a, t, Activity::new(Duration::two_point(8, 4, 2)))
            .unwrap();
        ArcInstance::new(g).unwrap()
    }

    #[test]
    fn curve_is_monotone_and_matches_single_solves() {
        let prep = PreparedInstance::new(chain());
        let budgets: Vec<u64> = (0..=8).collect();
        let points = solve_curve(&prep, &budgets, 0.5).unwrap();
        assert_eq!(points.len(), budgets.len());
        assert!(!points[0].warm, "first point is cold");
        assert!(points[1..].iter().all(|p| p.warm), "rest warm-chain");
        let mut prev = f64::INFINITY;
        for p in &points {
            assert!(p.lp_makespan <= prev + 1e-9, "LP curve non-increasing");
            prev = p.lp_makespan;
            let cold =
                rtt_core::lp_build::solve_min_makespan_lp(prep.tt(), p.budget).unwrap();
            assert!(
                (p.lp_makespan - cold.makespan).abs() < 1e-9,
                "budget {}: warm {} vs cold {}",
                p.budget,
                p.lp_makespan,
                cold.makespan
            );
        }
    }

    #[test]
    fn budget_zero_point_is_the_zero_resource_point() {
        // B = 0 is defined behavior end to end (the curve goldens pin
        // it on the wire): LP 6–10 with a zero budget row is feasible
        // with no flow, and the rounded point reports the base makespan
        // at zero budget used.
        let arc = chain();
        let base = arc.base_makespan();
        let prep = PreparedInstance::new(arc);
        let points = solve_curve(&prep, &[0], 0.5).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].makespan, base);
        assert_eq!(points[0].budget_used, 0);
        assert!((points[0].lp_makespan - base as f64).abs() < 1e-9);
        let sim = points[0].sim.expect("zero-budget point certifies");
        assert_eq!(sim.simulated, base, "chains cannot pipeline");
    }

    #[test]
    fn budget_zero_anchor_certifies_for_the_regime_baselines_too() {
        // the PR-4 regression above pins the routed zero-resource
        // anchor; since PR 5 the no-reuse and global-pool pipelines
        // anchor there with a certificate of their own
        let arc = chain();
        let base = arc.base_makespan();
        let registry = crate::Registry::standard();
        let prep = std::sync::Arc::new(PreparedInstance::new(arc));
        for name in ["noreuse-exact", "noreuse-bicriteria", "global-greedy"] {
            let req = crate::SolveRequest::min_makespan("b0", std::sync::Arc::clone(&prep), 0)
                .with_solver(name);
            let reports =
                crate::execute_one(&registry, &req, std::time::Instant::now());
            let r = &reports[0];
            assert_eq!(r.status, Status::Solved, "{name}: {}", r.detail);
            assert_eq!(r.makespan, Some(base), "{name}");
            let cert = r.sim.unwrap_or_else(|| panic!("{name}: anchor uncertified"));
            assert_eq!(cert.bound, base, "{name}");
            assert_eq!(cert.simulated, base, "{name}: chains cannot pipeline");
        }
    }

    #[test]
    fn second_sweep_reuses_the_cached_basis() {
        let prep = PreparedInstance::new(chain());
        let budgets: Vec<u64> = (0..=4).collect();
        let first = solve_curve(&prep, &budgets, 0.5).unwrap();
        let second = solve_curve(&prep, &budgets, 0.5).unwrap();
        assert!(
            second[0].warm,
            "the cached basis must warm even the first point of a later sweep"
        );
        for (a, b) in first.iter().zip(&second) {
            assert!((a.lp_makespan - b.lp_makespan).abs() < 1e-9);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.budget_used, b.budget_used);
        }
    }
}
