//! # rtt-engine — the serving layer of the resource-time tradeoff repo
//!
//! Every algorithm in this repository — the §3.1–§3.3 LP-rounding
//! approximations, the §3.4 series-parallel DP, exhaustive search, and
//! the §1 regime baselines — used to be a differently-shaped free
//! function that each consumer re-dispatched by hand. This crate puts
//! them behind one seam:
//!
//! * [`Solver`] — the uniform trait: `name()`, `supports()`, and
//!   `solve(&SolveRequest, &BudgetContext) -> SolveReport`;
//! * [`Registry`] — every registered algorithm, addressable by name and
//!   enumerable (`rtt_cli`'s `--solver` dispatch and the batch `all`
//!   fan-out both walk it);
//! * [`PreparedInstance`] / [`PrepCache`] — per-instance preprocessing
//!   (two-tuple expansion, SP decomposition, topological order)
//!   computed once and shared by every solver that needs it;
//! * [`run_batch`] — a fixed thread pool over the `crossbeam` channel
//!   shim that drains a request queue, enforces per-request deadlines,
//!   and returns reports in request order, so batch output is
//!   independent of the thread count;
//! * [`ReuseCache`] — opt-in cross-request reuse under the "cost,
//!   never bytes" contract: a solution tier of whole re-certified
//!   report vectors keyed by canonical fingerprint (serves the batch
//!   wire, single solves and sweeps alike, and survives restarts via
//!   the `rtt-cache-v1` spill format in [`persist`]), and a
//!   warm-basis/delta tier keyed by instance *shape* (serves
//!   [`solve_curve_cached`] and [`solve_delta_point`];
//!   objective-equal, never on the batch wire — see [`reuse`]).
//!
//! The free functions in `rtt_core` remain the algorithmic ground
//! truth; the trait impls here are thin adapters that certify every
//! result before reporting it — analytically (flow validation,
//! certificate factors) *and* physically: **every** solved report's
//! solution form — routed flow, no-reuse levels, or global-pool
//! schedule — is reducer-expanded and replayed by `rtt_sim`'s
//! event-heap engine, and must finish within the reported makespan
//! (Observation 1.1, [`certify`]; the replay's cost scales with the
//! expansion's event count, not its makespan). New scaling work
//! (sharding, async serving, alternative backends) plugs in behind
//! [`Solver`] without touching the layers above.
//!
//! ```
//! use rtt_engine::{PrepCache, Registry, SolveRequest, run_batch};
//! # use rtt_core::instance::Activity;
//! # use rtt_duration::Duration;
//! # let mut g: rtt_dag::Dag<(), Activity> = rtt_dag::Dag::new();
//! # let s = g.add_node(());
//! # let t = g.add_node(());
//! # g.add_edge(s, t, Activity::new(Duration::two_point(10, 4, 0))).unwrap();
//! # let arc = rtt_core::ArcInstance::new(g).unwrap();
//! let registry = Registry::standard();
//! let cache = PrepCache::new();
//! let prep = cache.get_or_insert("doc-instance", || arc);
//! let reqs = vec![SolveRequest::min_makespan("q1", prep, 4)];
//! let out = run_batch(&registry, reqs, 4);
//! assert!(out.reports.iter().all(|r| r.makespan.is_some()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod budget;
pub mod certify;
pub mod curve;
pub mod executor;
pub mod persist;
pub mod prep;
pub mod registry;
pub mod request;
pub mod reuse;
pub mod solver;

pub use admission::lint_requests;
pub use budget::{
    BudgetContext, BudgetLimits, BudgetPolicies, BudgetReport, BudgetSpec, ExhaustionPolicy,
};
pub use certify::{
    certify_noreuse, certify_noreuse_metered, certify_schedule, certify_schedule_metered,
    certify_solution, certify_solution_metered, expand_levels, expand_solution, SimCertificate,
    SIM_EVENT_GUARD,
};
pub use curve::{
    execute_sweep_pointwise, execute_sweep_wire, solve_curve, solve_curve_cached,
    solve_curve_metered, CurvePoint,
};
pub use executor::{
    execute_one, execute_one_at, execute_one_cached_at, run_batch, run_batch_cached,
    BatchOutcome, BatchStats,
};
pub use persist::{CACHE_FORMAT_TAG, PersistError};
pub use prep::{CacheStats, LpWarmState, PrepCache, PreparedInstance};
pub use registry::{canonical_name, Registry};
pub use request::{Objective, SolveReport, SolveRequest, SolverSelection, Status};
pub use reuse::{solve_delta_point, ReuseCache, ReuseStats};
pub use solver::{AlwaysExhaustSolver, AlwaysPanicSolver, Capability, SolutionForm, Solver};
