//! The parallel batch executor: a fixed worker pool draining a queue of
//! [`SolveRequest`]s through a shared [`Registry`].
//!
//! Work distribution runs over the `crossbeam` channel shim: one
//! MPMC job channel feeds every worker, one result channel collects
//! `(index, reports)` pairs, and the caller reassembles them in request
//! order — so the emitted report sequence is **independent of the
//! thread count and of scheduling**, which is what makes `rtt batch`
//! byte-stable (timing fields aside, which the wire format therefore
//! omits).
//!
//! Per-request deadlines are enforced at dequeue: a request still
//! queued when its deadline passes is reported as
//! [`Status::DeadlineExpired`] without touching a solver. Running
//! solvers are not preempted — solver granularity is the preemption
//! granularity, as in any cooperative pool.

use crate::registry::Registry;
use crate::request::{SolveRequest, SolveReport, SolverSelection, Status};
use std::time::{Duration as StdDuration, Instant};

/// Aggregate counters of one [`run_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Requests consumed.
    pub requests: usize,
    /// Reports produced (≥ requests under `--solver all`).
    pub reports: usize,
    /// Reports with [`Status::Solved`].
    pub solved: usize,
    /// Reports with [`Status::DeadlineExpired`].
    pub expired: usize,
    /// Worker threads used.
    pub threads: usize,
}

/// Reports (in request order) plus statistics.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One entry per (request, selected solver), flattened in request
    /// order then registry order — deterministic for a fixed input.
    pub reports: Vec<SolveReport>,
    /// Aggregate counters.
    pub stats: BatchStats,
    /// Wall-clock time of the whole batch.
    pub wall: StdDuration,
}

/// The single wire-visible reason for a deadline expiring at dequeue.
/// One constant, one construction path ([`expired_at_dequeue`]), so the
/// text cannot drift between the sweep and the solver-fan-out paths.
const DEADLINE_AT_DEQUEUE: &str = "deadline passed while queued";

/// The report emitted when a request's deadline passed while it was
/// still queued — used by every dispatch path in [`execute_one`].
fn expired_at_dequeue(
    req: &SolveRequest,
    solver: &'static str,
    queue_wait: StdDuration,
) -> SolveReport {
    let mut r = SolveReport::new(
        req.id.clone(),
        solver,
        Status::DeadlineExpired,
        DEADLINE_AT_DEQUEUE,
    );
    r.queue_wait = queue_wait;
    r
}

/// Whether the request's deadline already passed after `queue_wait` in
/// the queue.
fn deadline_expired(req: &SolveRequest, queue_wait: StdDuration) -> bool {
    req.deadline.is_some_and(|deadline| queue_wait > deadline)
}

/// Executes one request against the registry, in the calling thread.
/// `queued_at` feeds the deadline check and the `queue_wait` counters;
/// pass `Instant::now()` for an interactive solve.
pub fn execute_one(
    registry: &Registry,
    req: &SolveRequest,
    queued_at: Instant,
) -> Vec<SolveReport> {
    let queue_wait = queued_at.elapsed();
    // Sweeps are a whole-request service (one warm-started LP chain →
    // one report per budget), dispatched before solver fan-out.
    if let crate::Objective::MakespanSweep { budgets } = &req.objective {
        if deadline_expired(req, queue_wait) {
            return vec![expired_at_dequeue(req, "bicriteria", queue_wait)];
        }
        let started = Instant::now();
        let mut reports = crate::curve::execute_sweep(req, budgets);
        let wall = started.elapsed();
        for r in &mut reports {
            r.wall = wall;
            r.queue_wait = queue_wait;
        }
        return reports;
    }
    // resolve the selection to concrete solvers first, so deadline
    // expiry yields the same report multiset a live run would
    let selected: Vec<&dyn crate::Solver> = match &req.solver {
        SolverSelection::Named(name) => match registry.resolve(name) {
            Some(s) => vec![s],
            None => {
                return vec![SolveReport::new(
                    req.id.clone(),
                    "registry",
                    Status::Unsupported,
                    format!("unknown solver {name:?}"),
                )]
            }
        },
        SolverSelection::All => registry.supporting_prepared(&req.prepared),
    };
    if deadline_expired(req, queue_wait) {
        return selected
            .iter()
            .map(|s| expired_at_dequeue(req, s.name(), queue_wait))
            .collect();
    }
    selected
        .iter()
        .map(|s| {
            let started = Instant::now();
            let mut report = s.solve(req);
            // every routed solution additionally gets an Observation 1.1
            // simulation certificate before it leaves the engine
            crate::certify::attach(req.prepared.arc(), &mut report);
            report.wall = started.elapsed();
            report.queue_wait = queue_wait;
            report
        })
        .collect()
}

/// Drains `requests` through a pool of `threads` workers and returns
/// the reports in request order. `threads` is clamped to ≥ 1; the pool
/// is torn down before returning.
pub fn run_batch(
    registry: &Registry,
    requests: Vec<SolveRequest>,
    threads: usize,
) -> BatchOutcome {
    let started = Instant::now();
    let threads = threads.max(1);
    let n = requests.len();
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, SolveRequest, Instant)>();
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, Vec<SolveReport>)>();

    let enqueued = Instant::now();
    for (i, req) in requests.into_iter().enumerate() {
        job_tx.send((i, req, enqueued)).expect("receiver alive");
    }
    drop(job_tx); // workers drain to disconnect

    let mut slots: Vec<Option<Vec<SolveReport>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                for (i, req, queued_at) in job_rx.iter() {
                    let reports = execute_one(registry, &req, queued_at);
                    if res_tx.send((i, reports)).is_err() {
                        break; // collector gone: nothing left to do
                    }
                }
            });
        }
        drop(res_tx);
        for (i, reports) in res_rx.iter() {
            slots[i] = Some(reports);
        }
    });

    let reports: Vec<SolveReport> = slots
        .into_iter()
        .flat_map(|s| s.expect("every request produces reports"))
        .collect();
    let stats = BatchStats {
        requests: n,
        reports: reports.len(),
        solved: reports
            .iter()
            .filter(|r| r.status == Status::Solved)
            .count(),
        expired: reports
            .iter()
            .filter(|r| r.status == Status::DeadlineExpired)
            .count(),
        threads,
    };
    BatchOutcome {
        reports,
        stats,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::PreparedInstance;
    use crate::request::Objective;
    use rtt_core::instance::Activity;
    use rtt_core::ArcInstance;
    use rtt_dag::Dag;
    use rtt_duration::Duration;
    use std::sync::Arc;

    fn chain_instance(len: usize) -> ArcInstance {
        let mut g: Dag<(), Activity> = Dag::new();
        let mut prev = g.add_node(());
        for i in 0..len {
            let next = g.add_node(());
            g.add_edge(
                prev,
                next,
                Activity::new(Duration::two_point(10 + i as u64, 4, 1)),
            )
            .unwrap();
            prev = next;
        }
        ArcInstance::new(g).unwrap()
    }

    fn requests(k: usize) -> Vec<SolveRequest> {
        (0..k)
            .map(|i| {
                let prep = Arc::new(PreparedInstance::new(chain_instance(2 + i % 3)));
                SolveRequest::min_makespan(format!("r{i}"), prep, 4 + (i % 5) as u64)
            })
            .collect()
    }

    /// The deterministic projection of a report (timing stripped).
    fn key(r: &SolveReport) -> (String, String, String, Option<u64>, Option<u64>) {
        (
            r.id.clone(),
            r.solver.to_string(),
            r.status.as_str().to_string(),
            r.makespan,
            r.budget_used,
        )
    }

    #[test]
    fn batch_order_is_independent_of_thread_count() {
        let registry = Registry::standard();
        let baseline: Vec<_> = run_batch(&registry, requests(12), 1)
            .reports
            .iter()
            .map(key)
            .collect();
        assert!(!baseline.is_empty());
        for threads in [2, 4, 8] {
            let got: Vec<_> = run_batch(&registry, requests(12), threads)
                .reports
                .iter()
                .map(key)
                .collect();
            assert_eq!(baseline, got, "thread count {threads} changed the output");
        }
    }

    #[test]
    fn all_selection_reports_every_supporting_solver() {
        let registry = Registry::standard();
        let out = run_batch(&registry, requests(1), 2);
        let solvers: Vec<_> = out.reports.iter().map(|r| r.solver).collect();
        // chain instances are SP with step durations: the family
        // solvers drop out via supports(), the rest all answer
        assert!(solvers.contains(&"exact"));
        assert!(solvers.contains(&"bicriteria"));
        assert!(solvers.contains(&"sp-dp"));
        assert!(solvers.contains(&"noreuse-exact"));
        assert!(solvers.contains(&"global-greedy"));
        assert!(!solvers.contains(&"kway"));
        assert_eq!(out.stats.requests, 1);
        assert_eq!(out.stats.reports, out.reports.len());
        assert_eq!(out.stats.solved, out.reports.len(), "all must solve");
    }

    #[test]
    fn named_selection_and_unknown_name() {
        let registry = Registry::standard();
        let mut reqs = requests(2);
        reqs[0].solver = SolverSelection::Named("bicriteria".into());
        reqs[1].solver = SolverSelection::Named("no-such".into());
        let out = run_batch(&registry, reqs, 2);
        assert_eq!(out.reports.len(), 2);
        assert_eq!(out.reports[0].solver, "bicriteria");
        assert_eq!(out.reports[0].status, Status::Solved);
        assert_eq!(out.reports[1].status, Status::Unsupported);
        assert!(out.reports[1].detail.contains("unknown solver"));
    }

    #[test]
    fn expired_deadline_skips_the_solve() {
        let registry = Registry::standard();
        let prep = Arc::new(PreparedInstance::new(chain_instance(2)));
        let mut req = SolveRequest::min_makespan("late", prep, 4);
        req.solver = SolverSelection::Named("bicriteria".into());
        req.deadline = Some(StdDuration::ZERO);
        // queued "long ago": any positive wait exceeds a zero deadline
        let queued = Instant::now() - StdDuration::from_millis(50);
        let reports = execute_one(&registry, &req, queued);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].status, Status::DeadlineExpired);
        assert!(reports[0].makespan.is_none());
    }

    #[test]
    fn named_exact_runs_past_the_fanout_cap() {
        // 12 improvable jobs: above EXACT_JOB_CAP, so `all` skips the
        // exact solvers — but an explicitly named request still runs
        // (the old CLI behavior, kept)
        let registry = Registry::standard();
        let prep = Arc::new(PreparedInstance::new(chain_instance(12)));
        assert!(!registry
            .supporting_prepared(&prep)
            .iter()
            .any(|s| s.name() == "exact"));
        let req = SolveRequest::min_makespan("big", prep, 4).with_solver("exact");
        let reports = execute_one(&registry, &req, Instant::now());
        assert_eq!(reports[0].status, Status::Solved);
        assert!(reports[0].makespan.is_some());
    }

    #[test]
    fn min_resource_objective_flows_through() {
        let registry = Registry::standard();
        let prep = Arc::new(PreparedInstance::new(chain_instance(2)));
        let mut req = SolveRequest::min_resource("mr", prep, 6);
        req.solver = SolverSelection::Named("exact".into());
        let reports = execute_one(&registry, &req, Instant::now());
        assert_eq!(reports[0].status, Status::Solved);
        assert!(reports[0].makespan.unwrap() <= 6);
        let _ = Objective::MinResource { target: 6 };
    }
}
