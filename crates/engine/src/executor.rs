//! The parallel batch executor: a fixed worker pool draining a queue of
//! [`SolveRequest`]s through a shared [`Registry`].
//!
//! Work distribution runs over the `crossbeam` channel shim: one
//! MPMC job channel feeds every worker, one result channel collects
//! `(index, reports)` pairs, and the caller reassembles them in request
//! order — so the emitted report sequence is **independent of the
//! thread count and of scheduling**, which is what makes `rtt batch`
//! byte-stable (timing fields aside, which the wire format therefore
//! omits).
//!
//! Per-request deadlines are enforced at dequeue: a request still
//! queued when its deadline passes is reported as
//! [`Status::DeadlineExpired`] without touching a solver. Running
//! solvers are not preempted — solver granularity is the preemption
//! granularity, as in any cooperative pool — but a request that
//! declares a [`crate::budget::BudgetSpec`] *is* interruptible
//! mid-solve: its deadline and counter limits ride a
//! [`rtt_budget::BudgetMeter`] the compute loops check cooperatively.
//!
//! Faults are isolated per (request, solver): every solver call runs
//! under [`std::panic::catch_unwind`], so a panicking solver yields one
//! [`Status::Failed`] report carrying the panic payload while the rest
//! of the batch completes normally.
//!
//! # Panic-site audit (what the isolation boundary covers)
//!
//! The engine deliberately `expect`s/`assert`s its internal
//! correctness contracts — `validate(..)` on every produced solution,
//! `cert.holds()` on every simulation certificate, lazily computed
//! prep artifacts — rather than threading `Result`s through paths that
//! are bugs if they fail. The audit of those sites splits them into:
//!
//! * **request-reachable** (solver adapters, certification, curve
//!   rounding, lazy prep): all execute inside the per-(request, solver)
//!   `catch_unwind` in [`run_solver_isolated`] or the sweep dispatch,
//!   so a violation surfaces as one [`Status::Failed`] report with the
//!   assertion message as payload — the conversion the isolation
//!   boundary exists for;
//! * **infrastructure** (channel sends/receives, slot reassembly,
//!   registry duplicate-name registration): outside the boundary by
//!   design — they guard the executor's own plumbing, cannot be
//!   triggered by request *content*, and a failure there means the
//!   batch itself is broken, which must abort loudly;
//! * **statically unreachable** (`expect("an unmetered X cannot
//!   exhaust")` wrappers): a `None` meter never charges, so the error
//!   arm cannot construct.
//!
//! Prep-cache mutex `expect("poisoned")` sites deserve a note: solver
//! panics cannot poison them because the warm-LP state is moved out of
//! its lock before any solve runs — the critical sections contain no
//! solver code.

use crate::budget::{BudgetContext, BudgetReport, ExhaustionPolicy};
use crate::registry::Registry;
use crate::request::{SolveRequest, SolveReport, SolverSelection, Status};
use rtt_budget::{Dimension, Exhausted};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration as StdDuration, Instant};

/// Aggregate counters of one [`run_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Requests consumed.
    pub requests: usize,
    /// Reports produced (≥ requests under `--solver all`).
    pub reports: usize,
    /// Reports with [`Status::Solved`].
    pub solved: usize,
    /// Reports with [`Status::DeadlineExpired`].
    pub expired: usize,
    /// Reports with [`Status::BudgetExhausted`] (hard-rejected, or
    /// degrade with no fallback left).
    pub rejected: usize,
    /// Reports answered by a degrade fallback, or solved with a
    /// degraded (analytic-only) certificate.
    pub degraded: usize,
    /// Reports carrying soft-warn budget flags.
    pub warned: usize,
    /// Reports from isolated solver panics ([`Status::Failed`]).
    pub panicked: usize,
    /// Worker threads used.
    pub threads: usize,
}

/// Reports (in request order) plus statistics.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One entry per (request, selected solver), flattened in request
    /// order then registry order — deterministic for a fixed input.
    pub reports: Vec<SolveReport>,
    /// Aggregate counters.
    pub stats: BatchStats,
    /// Wall-clock time of the whole batch.
    pub wall: StdDuration,
}

/// The single wire-visible reason for a deadline expiring at dequeue.
/// One constant, one construction path ([`expired_at_dequeue`]), so the
/// text cannot drift between the sweep and the solver-fan-out paths.
const DEADLINE_AT_DEQUEUE: &str = "deadline passed while queued";

/// The report emitted when a request's deadline passed while it was
/// still queued — used by every dispatch path in [`execute_one`].
fn expired_at_dequeue(
    req: &SolveRequest,
    solver: &'static str,
    queue_wait: StdDuration,
) -> SolveReport {
    let mut r = SolveReport::new(
        req.id.clone(),
        solver,
        Status::DeadlineExpired,
        DEADLINE_AT_DEQUEUE,
    );
    r.queue_wait = queue_wait;
    r
}

/// Whether the request's deadline already passed after `queue_wait` in
/// the queue.
///
/// The boundary is **closed** (`>=`): a wait of exactly the deadline
/// counts as expired. The choice matters only for the degenerate
/// `Duration::ZERO` deadline — under the old strict `>`, whether a
/// zero-deadline request ran depended on the clock having ticked
/// between enqueue and dequeue (a coarse timer can observe
/// `queue_wait == 0`), i.e. on timer resolution rather than policy.
/// Closed at zero means "a zero deadline always expires", which is the
/// only resolution-independent reading; `zero_deadline_always_expires`
/// pins it.
fn deadline_expired(req: &SolveRequest, queue_wait: StdDuration) -> bool {
    req.deadline.is_some_and(|deadline| queue_wait >= deadline)
}

/// The exhaustion policy `req` declares for `dim` (hard-reject when the
/// request carries no budget — unreachable in practice, since only
/// budgeted requests can exhaust).
fn policy_for(req: &SolveRequest, dim: Dimension) -> ExhaustionPolicy {
    req.budget
        .map(|s| s.policies.for_dimension(dim))
        .unwrap_or_default()
}

/// The declared degradation chain: which solver answers when `solver`
/// exhausts its budget under [`ExhaustionPolicy::Degrade`]. One level
/// deep by construction — every fallback is an LP-rounding pipeline
/// with no fallback of its own.
fn degrade_target(solver: &str) -> Option<&'static str> {
    match solver {
        // exact search and the SP DP degrade to the Theorem 3.4
        // bi-criteria rounding (same regime, certified factors)
        "exact" | "sp-dp" => Some("bicriteria"),
        // the no-reuse regime degrades within itself
        "noreuse-exact" => Some("noreuse-bicriteria"),
        _ => None,
    }
}

/// The queue-depth admission check: `Some(exhausted)` when the request
/// declares a queue-depth bound and `queue_position` requests were
/// enqueued ahead of it beyond that bound.
fn queue_overflow(req: &SolveRequest, queue_position: usize) -> Option<Exhausted> {
    let limit = req.budget?.limits.queue_depth?;
    if (queue_position as u64) >= limit {
        Some(Exhausted {
            dimension: Dimension::QueueDepth,
            limit,
            consumed: queue_position as u64 + 1,
        })
    } else {
        None
    }
}

/// The [`Status::Failed`] report for an isolated solver panic.
fn panic_report(
    req: &SolveRequest,
    solver: &'static str,
    payload: Box<dyn std::any::Any + Send>,
) -> SolveReport {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    let mut r = SolveReport::new(
        req.id.clone(),
        solver,
        Status::Failed,
        format!("solver panicked: {msg}"),
    );
    r.panicked = true;
    r
}

/// Runs one solver under panic isolation and budget enforcement:
/// builds the request's [`BudgetContext`], catches panics into
/// [`Status::Failed`], and applies the certificate-degradation policy
/// when the Observation 1.1 replay exhausts `sim_events`. Returns the
/// report, any certificate-degradation notes, and the context (for the
/// wire-visible budget block).
fn run_solver_isolated(
    s: &dyn crate::Solver,
    req: &SolveRequest,
    queued_at: Instant,
) -> (SolveReport, Vec<String>, BudgetContext) {
    let ctx = BudgetContext::for_request(req, queued_at);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut report = s.solve(req, &ctx);
        let mut notes = Vec::new();
        // every solved report gets an Observation 1.1 simulation
        // certificate before it leaves the engine; under a sim_events
        // budget the replay itself is metered
        if let Err(e) = crate::certify::attach(req.prepared.arc(), &mut report, ctx.meter()) {
            match policy_for(req, e.dimension) {
                ExhaustionPolicy::Degrade => {
                    // the solution stands on its analytic certification
                    // alone; the report stays solved, flagged
                    report.sim = None;
                    notes.push(format!("certificate degraded to analytic-only: {e}"));
                }
                _ => report = crate::solver::report_exhausted(req, report.solver, e),
            }
        }
        (report, notes)
    }));
    match outcome {
        Ok((report, notes)) => (report, notes, ctx),
        Err(payload) => (panic_report(req, s.name(), payload), Vec::new(), ctx),
    }
}

/// Stamps the wire-visible budget block onto a report of a budgeted
/// request: consumption from `ctx`, soft-warn flags, degradation notes,
/// and (when admitted past a soft queue-depth bound) the queue warning.
fn finalize_budget(
    report: &mut SolveReport,
    ctx: &BudgetContext,
    degraded: Vec<String>,
    queue_warning: Option<&Exhausted>,
) {
    let Some(mut block) = BudgetReport::from_context(ctx) else {
        return;
    };
    block.degraded = degraded;
    if let Some(e) = queue_warning {
        block
            .warnings
            .push(format!("{} {} > limit {}", e.dimension, e.consumed, e.limit));
    }
    report.budget = Some(block);
}

/// Executes one request against the registry, in the calling thread.
/// `queued_at` feeds the deadline check and the `queue_wait` counters;
/// pass `Instant::now()` for an interactive solve.
pub fn execute_one(
    registry: &Registry,
    req: &SolveRequest,
    queued_at: Instant,
) -> Vec<SolveReport> {
    execute_one_at(registry, req, queued_at, 0)
}

/// [`execute_one`] with an explicit queue position (requests enqueued
/// ahead of this one — the batch index), which feeds the queue-depth
/// admission dimension. Deterministic: the position is assigned at
/// enqueue, not observed from live queue state.
pub fn execute_one_at(
    registry: &Registry,
    req: &SolveRequest,
    queued_at: Instant,
    queue_position: usize,
) -> Vec<SolveReport> {
    execute_one_cached_at(registry, req, queued_at, queue_position, None)
}

/// Replays a solution-tier hit: overwrites the donor's id with the
/// requesting id, re-runs the **analytic validation** of whatever
/// solution form the report carries, then re-runs the full Observation
/// 1.1 certify replay against the requesting instance — a reused
/// report is exactly as certified as a fresh one, and the recomputed
/// `sim_makespan` is byte-identical because certification is
/// deterministic. The analytic step is what makes donor-less entries
/// (loaded from a `rtt-cache-v1` spill) safe to serve: a tampered or
/// stale solution fails it here, under the same panic isolation as a
/// live solve, and surfaces as one [`Status::Failed`] report.
fn replay_cached(req: &SolveRequest, mut hit: SolveReport) -> SolveReport {
    hit.id = req.id.clone();
    let solver = hit.solver;
    match catch_unwind(AssertUnwindSafe(move || {
        let arc = req.prepared.arc();
        if let Some(sol) = &hit.solution {
            rtt_core::validate(arc, sol)
                .expect("cached solution failed analytic re-validation");
        } else if let Some(nr) = &hit.noreuse {
            rtt_core::regimes::validate_noreuse(arc, nr)
                .expect("cached no-reuse solution failed analytic re-validation");
        } else if let Some(s) = &hit.schedule {
            let budget = match req.objective {
                crate::Objective::MinMakespan { budget } => budget,
                _ => s.peak_in_use,
            };
            rtt_core::verify_global_schedule(arc, budget, s)
                .expect("cached schedule failed analytic re-validation");
        }
        hit.sim = None;
        crate::certify::attach(arc, &mut hit, None)
            .expect("an unmetered certify replay cannot exhaust");
        hit
    })) {
        Ok(replayed) => replayed,
        Err(payload) => panic_report(req, solver, payload),
    }
}

/// [`execute_one_at`] with an optional cross-request [`ReuseCache`]:
/// eligible requests — single solves *and* wire sweeps — probe the
/// solution tier before solving and park their report vector after
/// (see [`crate::reuse`] for the byte-identity contract). Sweeps never
/// touch the warm-basis tier here: the wire path runs a self-contained
/// crash-started chain ([`crate::curve::execute_sweep_wire`]) so its
/// on-wire pivot counts cannot depend on cache state.
///
/// This is also where [`SolveRequest::intra_threads`] takes effect:
/// the whole execution runs inside an `rtt_par::with_threads` scope
/// (the scope is thread-local and panic-safe, so a batch worker can
/// carry different knobs for consecutive requests without leakage).
/// The knob never changes report bytes — `rtt_par` paths are
/// bit-identical at every thread count.
pub fn execute_one_cached_at(
    registry: &Registry,
    req: &SolveRequest,
    queued_at: Instant,
    queue_position: usize,
    reuse: Option<&crate::reuse::ReuseCache>,
) -> Vec<SolveReport> {
    rtt_par::with_threads_opt(req.intra_threads, || {
        execute_one_cached_inner(registry, req, queued_at, queue_position, reuse)
    })
}

fn execute_one_cached_inner(
    registry: &Registry,
    req: &SolveRequest,
    queued_at: Instant,
    queue_position: usize,
    reuse: Option<&crate::reuse::ReuseCache>,
) -> Vec<SolveReport> {
    let queue_wait = queued_at.elapsed();
    let overflow = queue_overflow(req, queue_position);
    let soft_overflow = overflow
        .as_ref()
        .filter(|_| policy_for(req, Dimension::QueueDepth) == ExhaustionPolicy::SoftWarn);
    let hard_overflow = if soft_overflow.is_none() { overflow } else { None };
    // Sweeps are a whole-request service (one LP chain → one report
    // per budget), dispatched before solver fan-out. Budgeted or
    // deadlined sweeps degrade to per-point cold solves and skip the
    // cache entirely — their wire-visible `consumed` counters must
    // describe this run's metered work, never a replay's.
    if let crate::Objective::MakespanSweep { budgets } = &req.objective {
        if deadline_expired(req, queue_wait) {
            return vec![expired_at_dequeue(req, "bicriteria", queue_wait)];
        }
        let started = Instant::now();
        let ctx = BudgetContext::for_request(req, queued_at);
        let mut reports = if let Some(e) = hard_overflow {
            vec![crate::solver::report_exhausted(req, "bicriteria", e)]
        } else if req.budget.is_some() || req.deadline.is_some() {
            match catch_unwind(AssertUnwindSafe(|| {
                crate::curve::execute_sweep_pointwise(req, budgets, &ctx)
            })) {
                Ok(reports) => reports,
                Err(payload) => vec![panic_report(req, "bicriteria", payload)],
            }
        } else {
            // solution-tier probe: a hit replays the whole cached
            // per-point vector (each report re-validated and
            // re-certified) instead of re-running the chain
            let cache_key = reuse.and_then(|c| {
                let key = crate::reuse::ReuseCache::solution_key(req, "bicriteria")?;
                if let Some(hits) = c.lookup_solution(&key, req) {
                    return Some(Err(hits));
                }
                Some(Ok(key))
            });
            if let Some(Err(hits)) = cache_key {
                hits.into_iter().map(|h| replay_cached(req, h)).collect()
            } else {
                let reports = match catch_unwind(AssertUnwindSafe(|| {
                    crate::curve::execute_sweep_wire(req, budgets, &ctx)
                })) {
                    Ok(reports) => reports,
                    Err(payload) => vec![panic_report(req, "bicriteria", payload)],
                };
                if let (Some(cache), Some(Ok(key))) = (reuse, cache_key) {
                    cache.store_solution(key, req, &reports);
                }
                reports
            }
        };
        let wall = started.elapsed();
        for r in &mut reports {
            finalize_budget(r, &ctx, Vec::new(), soft_overflow);
            r.wall = wall;
            r.queue_wait = queue_wait;
        }
        return reports;
    }
    // resolve the selection to concrete solvers first, so deadline
    // expiry yields the same report multiset a live run would
    let selected: Vec<&dyn crate::Solver> = match &req.solver {
        SolverSelection::Named(name) => match registry.resolve(name) {
            Some(s) => vec![s],
            None => {
                return vec![SolveReport::new(
                    req.id.clone(),
                    "registry",
                    Status::Unsupported,
                    format!("unknown solver {name:?}"),
                )]
            }
        },
        SolverSelection::All => registry.supporting_prepared(&req.prepared),
    };
    if deadline_expired(req, queue_wait) {
        return selected
            .iter()
            .map(|s| expired_at_dequeue(req, s.name(), queue_wait))
            .collect();
    }
    selected
        .iter()
        .map(|s| {
            let started = Instant::now();
            if let Some(e) = hard_overflow {
                // rejected at admission: no solver ran, no meter to read
                let mut r = crate::solver::report_exhausted(req, s.name(), e);
                finalize_budget(&mut r, &BudgetContext::for_request(req, queued_at), Vec::new(), None);
                r.queue_wait = queue_wait;
                return r;
            }
            // solution-tier probe: an eligible hit replays the cached
            // report (re-certified) instead of solving — byte-identical
            // by solver determinism, see crate::reuse
            let cache_key = reuse.and_then(|c| {
                let key = crate::reuse::ReuseCache::solution_key(req, s.name())?;
                if let Some(hits) = c.lookup_solution(&key, req) {
                    return Some(Err(hits));
                }
                Some(Ok(key))
            });
            if let Some(Err(mut hits)) = cache_key {
                // a non-sweep key maps to exactly one report (the store
                // below writes one; persist::load enforces the arity)
                let hit = hits.pop().expect("solution tier never stores empty vectors");
                debug_assert!(hits.is_empty(), "non-sweep entry held multiple reports");
                let mut report = replay_cached(req, hit);
                report.wall = started.elapsed();
                report.queue_wait = queue_wait;
                return report;
            }
            let (mut report, mut notes, mut ctx) = run_solver_isolated(*s, req, queued_at);
            // degrade dispatch: one level along the declared chain,
            // with a fresh meter (the exhausted one is saturated)
            if report.status == Status::BudgetExhausted {
                if let Some(e) = report.exhausted {
                    if policy_for(req, e.dimension) == ExhaustionPolicy::Degrade {
                        if let Some(fb) =
                            degrade_target(report.solver).and_then(|n| registry.resolve(n))
                        {
                            let original = report.solver;
                            let (fb_report, fb_notes, fb_ctx) =
                                run_solver_isolated(fb, req, queued_at);
                            report = fb_report;
                            report.degraded_from = Some(original);
                            notes = fb_notes;
                            notes.insert(0, format!("degraded from {original}: {e}"));
                            ctx = fb_ctx;
                        }
                    }
                }
            }
            finalize_budget(&mut report, &ctx, notes, soft_overflow);
            report.wall = started.elapsed();
            report.queue_wait = queue_wait;
            if let (Some(cache), Some(Ok(key))) = (reuse, cache_key) {
                cache.store_solution(key, req, std::slice::from_ref(&report));
            }
            report
        })
        .collect()
}

/// Drains `requests` through a pool of `threads` workers and returns
/// the reports in request order. `threads` is clamped to ≥ 1; the pool
/// is torn down before returning.
pub fn run_batch(
    registry: &Registry,
    requests: Vec<SolveRequest>,
    threads: usize,
) -> BatchOutcome {
    run_batch_cached(registry, requests, threads, None)
}

/// [`run_batch`] with an optional [`crate::reuse::ReuseCache`] shared
/// by every worker. The cache changes which reports are *computed*
/// versus *replayed* — never their bytes: for any fixed request
/// sequence, `run_batch_cached(.., Some(cache))` produces the same
/// report sequence as `run_batch(..)` at any thread count (the
/// differential proptests pin this).
pub fn run_batch_cached(
    registry: &Registry,
    requests: Vec<SolveRequest>,
    threads: usize,
    reuse: Option<&crate::reuse::ReuseCache>,
) -> BatchOutcome {
    let started = Instant::now();
    let threads = threads.max(1);
    let n = requests.len();
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, SolveRequest, Instant)>();
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, Vec<SolveReport>)>();

    let enqueued = Instant::now();
    for (i, req) in requests.into_iter().enumerate() {
        job_tx.send((i, req, enqueued)).expect("receiver alive");
    }
    drop(job_tx); // workers drain to disconnect

    let mut slots: Vec<Option<Vec<SolveReport>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                for (i, req, queued_at) in job_rx.iter() {
                    // the batch index doubles as the queue position: it
                    // is assigned at enqueue, so queue-depth admission
                    // stays deterministic across thread counts
                    let reports = execute_one_cached_at(registry, &req, queued_at, i, reuse);
                    if res_tx.send((i, reports)).is_err() {
                        break; // collector gone: nothing left to do
                    }
                }
            });
        }
        drop(res_tx);
        for (i, reports) in res_rx.iter() {
            slots[i] = Some(reports);
        }
    });

    let reports: Vec<SolveReport> = slots
        .into_iter()
        .flat_map(|s| s.expect("every request produces reports"))
        .collect();
    let stats = BatchStats {
        requests: n,
        reports: reports.len(),
        solved: reports
            .iter()
            .filter(|r| r.status == Status::Solved)
            .count(),
        expired: reports
            .iter()
            .filter(|r| r.status == Status::DeadlineExpired)
            .count(),
        rejected: reports
            .iter()
            .filter(|r| r.status == Status::BudgetExhausted)
            .count(),
        degraded: reports
            .iter()
            .filter(|r| {
                r.degraded_from.is_some()
                    || r.budget.as_ref().is_some_and(|b| !b.degraded.is_empty())
            })
            .count(),
        warned: reports
            .iter()
            .filter(|r| r.budget.as_ref().is_some_and(|b| !b.warnings.is_empty()))
            .count(),
        panicked: reports.iter().filter(|r| r.panicked).count(),
        threads,
    };
    BatchOutcome {
        reports,
        stats,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::PreparedInstance;
    use crate::request::Objective;
    use rtt_core::instance::Activity;
    use rtt_core::ArcInstance;
    use rtt_dag::Dag;
    use rtt_duration::Duration;
    use std::sync::Arc;

    fn chain_instance(len: usize) -> ArcInstance {
        let mut g: Dag<(), Activity> = Dag::new();
        let mut prev = g.add_node(());
        for i in 0..len {
            let next = g.add_node(());
            g.add_edge(
                prev,
                next,
                Activity::new(Duration::two_point(10 + i as u64, 4, 1)),
            )
            .unwrap();
            prev = next;
        }
        ArcInstance::new(g).unwrap()
    }

    fn requests(k: usize) -> Vec<SolveRequest> {
        (0..k)
            .map(|i| {
                let prep = Arc::new(PreparedInstance::new(chain_instance(2 + i % 3)));
                SolveRequest::min_makespan(format!("r{i}"), prep, 4 + (i % 5) as u64)
            })
            .collect()
    }

    /// The deterministic projection of a report (timing stripped).
    fn key(r: &SolveReport) -> (String, String, String, Option<u64>, Option<u64>) {
        (
            r.id.clone(),
            r.solver.to_string(),
            r.status.as_str().to_string(),
            r.makespan,
            r.budget_used,
        )
    }

    #[test]
    fn batch_order_is_independent_of_thread_count() {
        let registry = Registry::standard();
        let baseline: Vec<_> = run_batch(&registry, requests(12), 1)
            .reports
            .iter()
            .map(key)
            .collect();
        assert!(!baseline.is_empty());
        for threads in [2, 4, 8] {
            let got: Vec<_> = run_batch(&registry, requests(12), threads)
                .reports
                .iter()
                .map(key)
                .collect();
            assert_eq!(baseline, got, "thread count {threads} changed the output");
        }
    }

    #[test]
    fn all_selection_reports_every_supporting_solver() {
        let registry = Registry::standard();
        let out = run_batch(&registry, requests(1), 2);
        let solvers: Vec<_> = out.reports.iter().map(|r| r.solver).collect();
        // chain instances are SP with step durations: the family
        // solvers drop out via supports(), the rest all answer
        assert!(solvers.contains(&"exact"));
        assert!(solvers.contains(&"bicriteria"));
        assert!(solvers.contains(&"sp-dp"));
        assert!(solvers.contains(&"noreuse-exact"));
        assert!(solvers.contains(&"global-greedy"));
        assert!(!solvers.contains(&"kway"));
        assert_eq!(out.stats.requests, 1);
        assert_eq!(out.stats.reports, out.reports.len());
        assert_eq!(out.stats.solved, out.reports.len(), "all must solve");
    }

    #[test]
    fn named_selection_and_unknown_name() {
        let registry = Registry::standard();
        let mut reqs = requests(2);
        reqs[0].solver = SolverSelection::Named("bicriteria".into());
        reqs[1].solver = SolverSelection::Named("no-such".into());
        let out = run_batch(&registry, reqs, 2);
        assert_eq!(out.reports.len(), 2);
        assert_eq!(out.reports[0].solver, "bicriteria");
        assert_eq!(out.reports[0].status, Status::Solved);
        assert_eq!(out.reports[1].status, Status::Unsupported);
        assert!(out.reports[1].detail.contains("unknown solver"));
    }

    #[test]
    fn expired_deadline_skips_the_solve() {
        let registry = Registry::standard();
        let prep = Arc::new(PreparedInstance::new(chain_instance(2)));
        let mut req = SolveRequest::min_makespan("late", prep, 4);
        req.solver = SolverSelection::Named("bicriteria".into());
        req.deadline = Some(StdDuration::ZERO);
        // queued "long ago": any positive wait exceeds a zero deadline
        let queued = Instant::now() - StdDuration::from_millis(50);
        let reports = execute_one(&registry, &req, queued);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].status, Status::DeadlineExpired);
        assert!(reports[0].makespan.is_none());
    }

    #[test]
    fn named_exact_runs_past_the_fanout_cap() {
        // 12 improvable jobs: above EXACT_JOB_CAP, so `all` skips the
        // exact solvers — but an explicitly named request still runs
        // (the old CLI behavior, kept)
        let registry = Registry::standard();
        let prep = Arc::new(PreparedInstance::new(chain_instance(12)));
        assert!(!registry
            .supporting_prepared(&prep)
            .iter()
            .any(|s| s.name() == "exact"));
        let req = SolveRequest::min_makespan("big", prep, 4).with_solver("exact");
        let reports = execute_one(&registry, &req, Instant::now());
        assert_eq!(reports[0].status, Status::Solved);
        assert!(reports[0].makespan.is_some());
    }

    #[test]
    fn min_resource_objective_flows_through() {
        let registry = Registry::standard();
        let prep = Arc::new(PreparedInstance::new(chain_instance(2)));
        let mut req = SolveRequest::min_resource("mr", prep, 6);
        req.solver = SolverSelection::Named("exact".into());
        let reports = execute_one(&registry, &req, Instant::now());
        assert_eq!(reports[0].status, Status::Solved);
        assert!(reports[0].makespan.unwrap() <= 6);
        let _ = Objective::MinResource { target: 6 };
    }

    // ---- budget enforcement and fault isolation -----------------

    use crate::budget::{BudgetLimits, BudgetPolicies, BudgetSpec, ExhaustionPolicy};

    /// A standard registry plus both fault-injection fixtures.
    fn faulty_registry() -> Registry {
        let mut r = Registry::standard();
        r.register(Box::new(crate::solver::AlwaysPanicSolver));
        r.register(Box::new(crate::solver::AlwaysExhaustSolver));
        r
    }

    fn spec_with(
        limits: BudgetLimits,
        policy: ExhaustionPolicy,
    ) -> Option<BudgetSpec> {
        Some(BudgetSpec {
            limits,
            policies: BudgetPolicies::uniform(policy),
        })
    }

    /// Satellite 1: the deadline boundary is closed. A zero deadline
    /// expires even when the clock has not ticked between enqueue and
    /// dequeue — expiry is policy, not timer resolution.
    #[test]
    fn zero_deadline_always_expires() {
        let registry = Registry::standard();
        let prep = Arc::new(PreparedInstance::new(chain_instance(2)));
        let mut req = SolveRequest::min_makespan("now", prep, 4);
        req.solver = SolverSelection::Named("bicriteria".into());
        req.deadline = Some(StdDuration::ZERO);
        // enqueue *now*: queue_wait may well be observed as exactly 0
        let reports = execute_one(&registry, &req, Instant::now());
        assert_eq!(reports[0].status, Status::DeadlineExpired);
        assert!(reports[0].makespan.is_none());
    }

    #[test]
    fn panicking_solver_is_isolated_and_the_batch_completes() {
        let registry = faulty_registry();
        let prep = Arc::new(PreparedInstance::new(chain_instance(2)));
        let mut reqs = vec![
            SolveRequest::min_makespan("boom", Arc::clone(&prep), 4)
                .with_solver("fixture-panic"),
        ];
        reqs.extend(requests(4));
        let out = run_batch(&registry, reqs, 2);
        let boom = &out.reports[0];
        assert_eq!(boom.status, Status::Failed);
        assert!(boom.panicked);
        assert!(
            boom.detail.contains("solver panicked")
                && boom.detail.contains("request boom"),
            "payload must survive: {}",
            boom.detail
        );
        assert_eq!(out.stats.panicked, 1);
        // every healthy request still answers in full
        assert!(out.reports[1..].iter().all(|r| r.status == Status::Solved));
    }

    #[test]
    fn pivot_exhaustion_hard_rejects_with_a_structured_reason() {
        let registry = faulty_registry();
        let prep = Arc::new(PreparedInstance::new(chain_instance(2)));
        let mut req = SolveRequest::min_makespan("cap", prep, 4)
            .with_solver("fixture-exhaust");
        req.budget = spec_with(
            BudgetLimits {
                lp_pivots: Some(10_000),
                ..Default::default()
            },
            ExhaustionPolicy::HardReject,
        );
        let reports = execute_one(&registry, &req, Instant::now());
        let r = &reports[0];
        assert_eq!(r.status, Status::BudgetExhausted);
        let e = r.exhausted.expect("structured reason");
        assert_eq!(e.dimension, Dimension::LpPivots);
        assert_eq!(e.limit, 10_000);
        assert!(e.consumed > e.limit);
        let block = r.budget.as_ref().expect("budgeted request has a block");
        assert_eq!(block.consumed.lp_pivots, e.consumed);
        assert!(block.warnings.is_empty() && block.degraded.is_empty());
    }

    #[test]
    fn merge_step_exhaustion_degrades_exact_to_bicriteria() {
        let registry = Registry::standard();
        let prep = Arc::new(PreparedInstance::new(chain_instance(3)));
        let mut req =
            SolveRequest::min_makespan("deg", Arc::clone(&prep), 4).with_solver("exact");
        req.budget = spec_with(
            BudgetLimits {
                dp_merge_steps: Some(1),
                ..Default::default()
            },
            ExhaustionPolicy::Degrade,
        );
        let reports = execute_one(&registry, &req, Instant::now());
        let r = &reports[0];
        assert_eq!(r.status, Status::Solved, "{}", r.detail);
        assert_eq!(r.solver, "bicriteria", "fallback answers");
        assert_eq!(r.degraded_from, Some("exact"));
        // the fallback's answer is a real certified bicriteria solve
        assert!(r.makespan.is_some());
        assert_eq!(r.makespan_factor, Some(2.0));
        assert_eq!(r.resource_factor, Some(2.0));
        assert!(r.sim.is_some(), "fallback report keeps its certificate");
        let block = r.budget.as_ref().expect("budget block");
        assert!(
            block.degraded.iter().any(|d| d.starts_with("degraded from exact:")),
            "degradation recorded: {:?}",
            block.degraded
        );
    }

    #[test]
    fn soft_warn_completes_at_full_fidelity_and_flags() {
        let registry = Registry::standard();
        let prep = Arc::new(PreparedInstance::new(chain_instance(3)));
        let mut req =
            SolveRequest::min_makespan("warn", Arc::clone(&prep), 4).with_solver("exact");
        req.budget = spec_with(
            BudgetLimits {
                dp_merge_steps: Some(1),
                ..Default::default()
            },
            ExhaustionPolicy::SoftWarn,
        );
        let reports = execute_one(&registry, &req, Instant::now());
        let r = &reports[0];
        assert_eq!(r.status, Status::Solved, "{}", r.detail);
        assert_eq!(r.solver, "exact", "no fallback under soft-warn");
        let block = r.budget.as_ref().expect("budget block");
        assert!(
            block
                .warnings
                .iter()
                .any(|w| w.starts_with("dp_merge_steps") && w.contains("> limit 1")),
            "overage flagged: {:?}",
            block.warnings
        );
        // the answer itself matches the unbudgeted solve
        let mut plain = SolveRequest::min_makespan("plain", prep, 4).with_solver("exact");
        plain.solver = SolverSelection::Named("exact".into());
        let baseline = execute_one(&registry, &plain, Instant::now());
        assert_eq!(r.makespan, baseline[0].makespan);
        assert_eq!(r.budget_used, baseline[0].budget_used);
    }

    #[test]
    fn queue_depth_bound_rejects_and_soft_warns_by_position() {
        let registry = Registry::standard();
        let prep = Arc::new(PreparedInstance::new(chain_instance(2)));
        let limits = BudgetLimits {
            queue_depth: Some(2),
            ..Default::default()
        };
        let mut req = SolveRequest::min_makespan("deep", Arc::clone(&prep), 4)
            .with_solver("bicriteria");
        req.budget = spec_with(limits, ExhaustionPolicy::HardReject);
        // position 1 (one request ahead): admitted
        let ok = execute_one_at(&registry, &req, Instant::now(), 1);
        assert_eq!(ok[0].status, Status::Solved);
        // position 2 (two ahead = at the bound): rejected at admission
        let rejected = execute_one_at(&registry, &req, Instant::now(), 2);
        assert_eq!(rejected[0].status, Status::BudgetExhausted);
        let e = rejected[0].exhausted.unwrap();
        assert_eq!(e.dimension, Dimension::QueueDepth);
        assert_eq!((e.limit, e.consumed), (2, 3));
        // same bound under soft-warn: admitted, flagged
        req.budget = spec_with(limits, ExhaustionPolicy::SoftWarn);
        let warned = execute_one_at(&registry, &req, Instant::now(), 2);
        assert_eq!(warned[0].status, Status::Solved);
        let block = warned[0].budget.as_ref().unwrap();
        assert_eq!(block.warnings, vec!["queue_depth 3 > limit 2".to_string()]);
    }

    /// Satellite 3: a batch mixing panicking, exhausting (under every
    /// policy), and healthy requests completes with report order — and
    /// the budget/fault fields — independent of the thread count.
    #[test]
    fn faulty_batch_is_thread_count_independent() {
        let registry = faulty_registry();

        fn faulty_requests() -> Vec<SolveRequest> {
            let prep = Arc::new(PreparedInstance::new(chain_instance(3)));
            let pivot_limits = BudgetLimits {
                lp_pivots: Some(2048),
                ..Default::default()
            };
            let merge_limits = BudgetLimits {
                dp_merge_steps: Some(1),
                ..Default::default()
            };
            let mut reqs = Vec::new();
            let mut push = |req: SolveRequest| reqs.push(req);
            push(
                SolveRequest::min_makespan("panic", Arc::clone(&prep), 4)
                    .with_solver("fixture-panic"),
            );
            let mut hard = SolveRequest::min_makespan("hard", Arc::clone(&prep), 4)
                .with_solver("fixture-exhaust");
            hard.budget = spec_with(pivot_limits, ExhaustionPolicy::HardReject);
            push(hard);
            let mut deg = SolveRequest::min_makespan("deg", Arc::clone(&prep), 4)
                .with_solver("exact");
            deg.budget = spec_with(merge_limits, ExhaustionPolicy::Degrade);
            push(deg);
            let mut warn = SolveRequest::min_makespan("warn", Arc::clone(&prep), 4)
                .with_solver("exact");
            warn.budget = spec_with(merge_limits, ExhaustionPolicy::SoftWarn);
            push(warn);
            for i in 0..4 {
                push(
                    SolveRequest::min_makespan(format!("ok{i}"), Arc::clone(&prep), 4)
                        .with_solver("bicriteria"),
                );
            }
            reqs
        }

        /// Deterministic projection including the new wire fields.
        fn fkey(r: &SolveReport) -> String {
            format!(
                "{}|{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{}",
                r.id,
                r.solver,
                r.status.as_str(),
                r.makespan,
                r.degraded_from,
                r.exhausted.map(|e| (e.dimension.as_str(), e.limit, e.consumed)),
                r.budget.as_ref().map(|b| (
                    b.consumed.lp_pivots,
                    b.consumed.dp_merge_steps,
                    b.consumed.sim_events,
                    b.warnings.clone(),
                    b.degraded.clone(),
                )),
                r.panicked,
                r.detail,
            )
        }

        let base_out = run_batch(&registry, faulty_requests(), 1);
        assert_eq!(base_out.stats.panicked, 1);
        assert_eq!(base_out.stats.rejected, 1);
        assert_eq!(base_out.stats.degraded, 1);
        assert_eq!(base_out.stats.warned, 1);
        assert_eq!(base_out.stats.solved, 6, "deg + warn + 4 healthy");
        let baseline: Vec<String> = base_out.reports.iter().map(fkey).collect();
        for threads in [2, 4, 8] {
            let out = run_batch(&registry, faulty_requests(), threads);
            let got: Vec<String> = out.reports.iter().map(fkey).collect();
            assert_eq!(baseline, got, "thread count {threads} changed the output");
            assert_eq!(out.stats.panicked, 1);
            assert_eq!(out.stats.rejected, 1);
            assert_eq!(out.stats.degraded, 1);
            assert_eq!(out.stats.warned, 1);
        }
    }

    #[test]
    fn unbudgeted_requests_carry_no_budget_block() {
        // golden stability: the wire-visible budget machinery must be
        // invisible unless a request opts in
        let registry = Registry::standard();
        let out = run_batch(&registry, requests(3), 2);
        assert!(out
            .reports
            .iter()
            .all(|r| r.budget.is_none() && r.degraded_from.is_none() && !r.panicked));
        assert_eq!(out.stats.rejected, 0);
        assert_eq!(out.stats.degraded, 0);
        assert_eq!(out.stats.warned, 0);
        assert_eq!(out.stats.panicked, 0);
    }
}
