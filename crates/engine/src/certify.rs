//! Simulation-backed certification of solved reports (Observation 1.1)
//! — for **every** pipeline in the registry.
//!
//! Analytic makespans in this repo are longest-path formulas over
//! duration functions. Observation 1.1 says the *actual* §1 execution —
//! memory cells applying one update per tick behind their locks — never
//! takes longer than that bound. This module closes the loop: every
//! solved report is **physically expanded** into an update-granular DAG
//! (each job becomes the reducer gadget its allocation buys) and
//! executed by [`rtt_sim`]'s event-heap engine with unbounded
//! processors. The simulated finish must be `≤` the reported makespan;
//! a violation is an engine bug and panics, like every other
//! certification failure in [`crate::solver`].
//!
//! The three solution forms the registry produces all replay through
//! the same per-arc-level expansion ([`expand_levels`]):
//!
//! * **routed** [`Solution`]s (the paper's reuse-over-paths regime):
//!   each arc runs at the gadget its routed flow buys —
//!   [`certify_solution`];
//! * **no-reuse** [`NoReuseSolution`]s (Q1.1): each arc runs at its
//!   dedicated level — [`certify_noreuse`];
//! * **global-pool** [`GlobalSchedule`]s (Q1.2): schedule-granular
//!   replay — each arc runs at the level it *held while scheduled*,
//!   whose duration it covered on the timeline, so the expansion's
//!   longest path (and hence the simulated finish) is within the
//!   schedule's makespan — [`certify_schedule`].
//!
//! # The expansion
//!
//! Arc-instance nodes become zero-work junctions (pure precedence);
//! each activity arc `e` with claimed duration `t_e` and resource level
//! `r_e` becomes a gadget whose longest path is at most `t_e`:
//!
//! * **recursive binary** (Eq. 3): the §1 sibling reducer at the best
//!   height `2^h ≤ f_e` — `2^h` leaf cells splitting the updates, `h`
//!   one-update sibling merges, one final root update
//!   (`⌈n/2^h⌉ + h + 1`);
//! * **k-way** (Eq. 2): the best `k ≤ min(f_e, ⌊√n⌋)` parallel cells
//!   feeding `k` serial merge updates into the shared variable
//!   (`⌈n/k⌉ + k`);
//! * **general step / constant**: one serialized cell applying `t_e`
//!   updates (the claimed duration taken literally).
//!
//! Per-gadget paths are `≤ t_e` (validation guarantees
//! `t_e ≥ t_e(r_e)`), so every expanded source→sink path is `≤` the
//! claimed makespan — and the simulation can only *pipeline below*
//! that, which is exactly what the certificate records.
//!
//! # Cost
//!
//! Replay runs on the event-heap engine ([`rtt_sim::ExecModel`]), whose
//! cost is `O((V + E) log V)` in the *expansion's* nodes and arcs —
//! independent of the makespan and of the update counts, so a job of
//! `10^12` updates certifies as cheaply as one of 10. The PR-4
//! `SIM_COST_CAP` (updates × nodes, the tick loop's worst case) is
//! therefore gone; what remains is [`SIM_EVENT_GUARD`], a soft guard on
//! the event count that only pathological expansions (more arcs than
//! any instance this repo serves) can reach.

use rtt_budget::{BudgetMeter, Exhausted};
use rtt_core::{ArcInstance, GlobalSchedule, NoReuseSolution, Solution};
use rtt_duration::{
    is_infinite, raw_kway_time, raw_recursive_binary_time, recursive_binary_max_height,
    DurationKind, Resource, Time,
};
use rtt_dag::{Dag, NodeId};
use rtt_sim::ExecModel;

/// Soft guard on certification cost: expansions with more than this
/// many simulation *events* (expanded cells + update arcs — exactly
/// what one [`ExecModel::run_event`] call processes) skip the
/// certificate rather than risk unbounded serving latency. This is an
/// event-count bound, not the PR-4 update-count cap: makespan and
/// per-cell work no longer matter, only expansion size, and at ~50M
/// events the guard sits far above every workload the repo generates
/// (the bench-pr5 coverage counts document that nothing real skips).
pub const SIM_EVENT_GUARD: u64 = 50_000_000;

/// The result of simulating a reducer-expanded solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimCertificate {
    /// Simulated finish tick with unbounded processors.
    pub simulated: Time,
    /// The reported (analytic) makespan the simulation must not exceed.
    pub bound: Time,
    /// Nodes of the expanded update-granular DAG.
    pub expanded_nodes: usize,
    /// Total updates the simulation applied.
    pub expanded_updates: u64,
    /// Peak simultaneously busy cells.
    pub peak_parallelism: usize,
}

impl SimCertificate {
    /// Whether Observation 1.1 held (always true for certificates the
    /// engine emits — a violation panics instead).
    pub fn holds(&self) -> bool {
        self.simulated <= self.bound
    }
}

/// Best sibling-reducer height affordable with `r` units on a job of
/// `n` updates: the `h` minimizing Eq. 3 subject to `2^h ≤ r`.
fn best_recbinary_height(n: Time, r: Resource) -> u32 {
    let cap = recursive_binary_max_height(n);
    let mut best_h = 0u32;
    let mut best_t = n;
    for h in 1..=cap {
        if (1u64 << h) > r {
            break;
        }
        let t = raw_recursive_binary_time(n, h);
        if t < best_t {
            best_t = t;
            best_h = h;
        }
    }
    best_h
}

/// Best k-way split arity affordable with `r` units on a job of `n`
/// updates: the `k` minimizing Eq. 2 subject to `k ≤ r` (0 = no split).
fn best_kway_arity(n: Time, r: Resource) -> u64 {
    let mut best_k = 0u64;
    let mut best_t = n;
    for k in 2..=r {
        if k.saturating_mul(k) > n {
            break; // past ⌊√n⌋ Eq. 2 is flat: no further improvement
        }
        let t = raw_kway_time(n, k);
        if t < best_t {
            best_t = t;
            best_k = k;
        }
    }
    best_k
}

/// How a gadget's entry cells receive their updates.
enum Entry {
    /// All updates release when the source junction completes — the
    /// conservative gate, used whenever update provenance is unknown.
    Junction,
    /// One in-edge per incoming update of the source junction, wired
    /// round-robin across the entry cells — the §1 semantics: a cell
    /// drains updates as individual predecessors complete, so staggered
    /// updates pipeline (this is what lets the simulation run strictly
    /// below the makespan bound).
    PerUpdate,
}

/// Physically expands a certified routed solution into an
/// update-granular DAG plus its per-node work vector —
/// [`expand_levels`] at the routed flows.
pub fn expand_solution(arc: &ArcInstance, sol: &Solution) -> (Dag<(), ()>, Vec<Time>) {
    expand_levels(arc, &sol.edge_times, &sol.arc_flows)
}

/// Physically expands per-arc claimed durations and resource levels
/// into an update-granular DAG plus its per-node work vector (see the
/// module docs for the gadgets). This is the one expansion all three
/// solution forms replay through: `levels[e]` is whatever the regime
/// says arc `e` runs at (routed flow, dedicated level, or the level
/// held on the schedule), and `edge_times[e]` the duration it claims —
/// which must be achievable at that level (`t_e ≥ t_e(levels[e])`) for
/// the gadget path to stay within the claim.
///
/// Two passes: gadget construction first (recording, per arc, the
/// *tail* node whose completion signals the activity's completion),
/// then entry wiring — pipelined per-update edges from the predecessor
/// arcs' tails when the entry cells' total work equals the source
/// junction's in-degree (each in-arc is then exactly one update, the
/// race-DAG convention), the junction gate otherwise.
pub fn expand_levels(
    arc: &ArcInstance,
    edge_times: &[Time],
    levels: &[Resource],
) -> (Dag<(), ()>, Vec<Time>) {
    let d = arc.dag();
    let mut g: Dag<(), ()> = Dag::with_capacity(d.node_count(), d.edge_count());
    // junctions, one per original node, ids preserved, zero work
    let mut works: Vec<Time> = vec![0; d.node_count()];
    for _ in d.node_ids() {
        g.add_node(());
    }
    let cell = |g: &mut Dag<(), ()>, works: &mut Vec<Time>, w: Time| -> NodeId {
        let v = g.add_node(());
        works.push(w);
        v
    };
    // which gadget an arc expands into, decided once per arc
    enum Gadget {
        /// Sibling reducer at height `h` on `n` updates.
        Recbinary { n: Time, h: u32 },
        /// `k`-way split on `n` updates.
        Kway { n: Time, k: u64 },
        /// Serialized cell at the claimed duration (or a direct edge).
        Serial,
    }
    // pass 1: gadgets (internal structure + exit into the dst junction)
    let mut tail: Vec<NodeId> = Vec::with_capacity(d.edge_count());
    let mut entries: Vec<(Entry, Vec<NodeId>)> = Vec::with_capacity(d.edge_count());
    for e in d.edge_refs() {
        let t = edge_times[e.id.index()];
        let r = levels[e.id.index()];
        let (u, v) = (e.src, e.dst);
        let in_deg = d.in_degree(u) as u64;
        let gadget = match e.weight.duration.kind() {
            DurationKind::RecursiveBinary { base: n } => match best_recbinary_height(n, r) {
                0 => Gadget::Serial,
                h => Gadget::Recbinary { n, h },
            },
            DurationKind::KWay { base: n } => match best_kway_arity(n, r) {
                0 | 1 => Gadget::Serial,
                k => Gadget::Kway { n, k },
            },
            DurationKind::Step => Gadget::Serial,
        };
        match gadget {
            // the same sibling shape rtt_duration::expand builds for
            // node DAGs (leaf ceil-split, pairwise one-update merges,
            // final root update) — reproduced here on the arc form
            // because this gadget additionally needs the junction/entry
            // wiring; crates/bench race_perf and the tests below pin it
            // to Eq. 3 so the two constructions cannot drift silently
            Gadget::Recbinary { n, h } => {
                let leaves: Vec<NodeId> = (0..1u64 << h)
                    .map(|_| cell(&mut g, &mut works, 0)) // shares assigned at wiring
                    .collect();
                // sibling merges: one update each, gated on both children
                let mut level = leaves.clone();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len() / 2);
                    for pair in level.chunks(2) {
                        let m = cell(&mut g, &mut works, 1);
                        for &c in pair {
                            g.add_edge(c, m, ()).expect("fresh node");
                        }
                        next.push(m);
                    }
                    level = next;
                }
                // the survivor's final update of the shared variable
                let root = cell(&mut g, &mut works, 1);
                g.add_edge(level[0], root, ()).expect("fresh node");
                g.add_edge(root, v, ()).expect("junction exists");
                let mode = if n == in_deg && n > 0 {
                    Entry::PerUpdate
                } else {
                    Entry::Junction
                };
                // leaf works: ceil-split of n, matching the wiring order
                let l = leaves.len() as u64;
                for (i, &leaf) in leaves.iter().enumerate() {
                    works[leaf.index()] = n / l + u64::from((i as u64) < n % l);
                }
                tail.push(root);
                entries.push((mode, leaves));
            }
            Gadget::Kway { n, k } => {
                // the shared variable absorbs one merge update per cell
                let hub = cell(&mut g, &mut works, k);
                let cells: Vec<NodeId> = (0..k)
                    .map(|i| {
                        let share = n / k + u64::from(i < n % k);
                        let c = cell(&mut g, &mut works, share);
                        g.add_edge(c, hub, ()).expect("fresh node");
                        c
                    })
                    .collect();
                g.add_edge(hub, v, ()).expect("junction exists");
                let mode = if n == in_deg && n > 0 {
                    Entry::PerUpdate
                } else {
                    Entry::Junction
                };
                tail.push(hub);
                entries.push((mode, cells));
            }
            Gadget::Serial => {
                if t == 0 {
                    // pure precedence (dummy arcs): completes with u
                    g.add_edge(u, v, ()).expect("junctions exist");
                    tail.push(u);
                    entries.push((Entry::Junction, Vec::new()));
                } else {
                    // lock-serialized cell at the claimed duration;
                    // per-update wiring applies when the claim equals
                    // the update count (no reducer engaged)
                    let c = cell(&mut g, &mut works, t);
                    g.add_edge(c, v, ()).expect("junction exists");
                    let mode = if t == in_deg {
                        Entry::PerUpdate
                    } else {
                        Entry::Junction
                    };
                    tail.push(c);
                    entries.push((mode, vec![c]));
                }
            }
        }
    }
    // pass 2: entry wiring
    for e in d.edge_refs() {
        let (mode, targets) = &entries[e.id.index()];
        if targets.is_empty() {
            continue; // direct edge, fully wired
        }
        match mode {
            Entry::Junction => {
                for &c in targets {
                    g.add_edge(e.src, c, ()).expect("nodes exist");
                }
            }
            Entry::PerUpdate => {
                // one edge per incoming update, round-robin over the
                // entry cells (index j lands on cell j mod L, which is
                // how the ceil-split shares were assigned)
                for (j, &in_arc) in d.in_edges(e.src).iter().enumerate() {
                    let c = targets[j % targets.len()];
                    g.add_edge(tail[in_arc.index()], c, ()).expect("nodes exist");
                }
            }
        }
    }
    (g, works)
}

/// Expands, replays on the event engine, and wraps the result — shared
/// by the three per-form certifiers. `Ok(None)` when the claimed
/// durations are infinite or the expansion exceeds [`SIM_EVENT_GUARD`]
/// (the soft guard predates budgets and stays as the absolute
/// backstop); `Err` when a metered replay exhausts its `sim_events`
/// budget mid-simulation.
fn certify_expansion(
    arc: &ArcInstance,
    edge_times: &[Time],
    levels: &[Resource],
    bound: Time,
    meter: Option<&BudgetMeter>,
) -> Result<Option<SimCertificate>, Exhausted> {
    if is_infinite(bound) || edge_times.iter().any(|&t| is_infinite(t)) {
        return Ok(None);
    }
    let (g, works) = expand_levels(arc, edge_times, levels);
    let model = ExecModel::from_works(&g, &works);
    if model.event_count() > SIM_EVENT_GUARD {
        return Ok(None);
    }
    // Sharded replay only when unmetered: mid-replay exhaustion
    // stop-points are wire-visible and must not depend on shard
    // scheduling. Bit-identical to the serial engine by construction
    // (see `ExecModel::run_event_sharded`).
    let res = if meter.is_none() && rtt_par::parallel_enabled() {
        model.run_event_sharded(rtt_par::current())
    } else {
        model.run_event_metered(meter)?
    };
    Ok(Some(SimCertificate {
        simulated: res.finish,
        bound,
        expanded_nodes: g.node_count(),
        expanded_updates: res.updates_applied,
        peak_parallelism: res.peak_parallelism,
    }))
}

/// Simulates the reducer expansion of a routed `sol` (each arc at its
/// routed flow) and returns the Observation 1.1 certificate, or `None`
/// when the solution cannot be simulated (infinite durations, or an
/// expansion past [`SIM_EVENT_GUARD`]).
pub fn certify_solution(arc: &ArcInstance, sol: &Solution) -> Option<SimCertificate> {
    certify_solution_metered(arc, sol, None).expect("an unmetered replay cannot exhaust")
}

/// [`certify_solution`] under a cooperative budget meter: the replay
/// charges `sim_events` (one per heap pop plus its released
/// successors) and bails out with a typed [`Exhausted`] when the
/// request's event budget trips.
pub fn certify_solution_metered(
    arc: &ArcInstance,
    sol: &Solution,
    meter: Option<&BudgetMeter>,
) -> Result<Option<SimCertificate>, Exhausted> {
    certify_expansion(arc, &sol.edge_times, &sol.arc_flows, sol.makespan, meter)
}

/// Simulates the reducer expansion of a no-reuse solution (Q1.1): each
/// arc runs at its *dedicated* level. The claimed `edge_times` are
/// achievable at those levels ([`rtt_core::regimes::validate_noreuse`]
/// checks exactly that), so every expanded path is within the claimed
/// makespan and the replay can only pipeline below it.
pub fn certify_noreuse(arc: &ArcInstance, sol: &NoReuseSolution) -> Option<SimCertificate> {
    certify_noreuse_metered(arc, sol, None).expect("an unmetered replay cannot exhaust")
}

/// [`certify_noreuse`] under a cooperative budget meter (see
/// [`certify_solution_metered`] for the charging scheme).
pub fn certify_noreuse_metered(
    arc: &ArcInstance,
    sol: &NoReuseSolution,
    meter: Option<&BudgetMeter>,
) -> Result<Option<SimCertificate>, Exhausted> {
    certify_expansion(arc, &sol.edge_times, &sol.levels, sol.makespan, meter)
}

/// Schedule-granular replay of a global-pool schedule (Q1.2): each arc
/// expands into the gadget of the level it **held while running**, at
/// the duration that level buys (`t_e(level)` — which the schedule
/// covered on the timeline, per
/// [`rtt_core::verify_global_schedule`]'s duration check). Since every
/// arc started after its predecessors finished, the expansion's
/// longest path is at most the last finish, hence at most the
/// schedule's makespan — the replayed finish certifies it under
/// Observation 1.1. (The pool constraint itself is the *analytic*
/// verifier's job; the replay certifies the physical execution.)
pub fn certify_schedule(arc: &ArcInstance, s: &GlobalSchedule) -> Option<SimCertificate> {
    certify_schedule_metered(arc, s, None).expect("an unmetered replay cannot exhaust")
}

/// [`certify_schedule`] under a cooperative budget meter (see
/// [`certify_solution_metered`] for the charging scheme).
pub fn certify_schedule_metered(
    arc: &ArcInstance,
    s: &GlobalSchedule,
    meter: Option<&BudgetMeter>,
) -> Result<Option<SimCertificate>, Exhausted> {
    let d = arc.dag();
    let times: Vec<Time> = d
        .edge_ids()
        .map(|e| arc.arc_time(e, s.level[e.index()]))
        .collect();
    certify_expansion(arc, &times, &s.level, s.makespan, meter)
}

/// Attaches the simulation certificate to a solved report — whichever
/// solution form it carries (routed flow, no-reuse levels, or a global
/// schedule) — panicking if Observation 1.1 fails (an engine bug,
/// treated like every other certification failure). A metered replay
/// that exhausts its `sim_events` budget returns the typed error with
/// `report.sim` left `None`; the executor applies the request's
/// exhaustion policy (degrade to analytic-only, or fail the report).
pub(crate) fn attach(
    arc: &ArcInstance,
    report: &mut crate::SolveReport,
    meter: Option<&BudgetMeter>,
) -> Result<(), Exhausted> {
    if report.status != crate::Status::Solved {
        return Ok(());
    }
    let cert = if let Some(sol) = &report.solution {
        certify_solution_metered(arc, sol, meter)?
    } else if let Some(nr) = &report.noreuse {
        certify_noreuse_metered(arc, nr, meter)?
    } else if let Some(s) = &report.schedule {
        certify_schedule_metered(arc, s, meter)?
    } else {
        None
    };
    if let Some(cert) = cert {
        assert!(
            cert.holds(),
            "Observation 1.1 violated: simulated {} > reported makespan {} \
             (solver {}, request {})",
            cert.simulated,
            cert.bound,
            report.solver,
            report.id,
        );
        report.sim = Some(cert);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_core::instance::{Activity, Job};
    use rtt_core::{to_arc_form, Instance};
    use rtt_duration::Duration;

    /// A star of `n` updates into one recbinary cell, via node form.
    fn recbinary_star(n: u64) -> ArcInstance {
        let mut g: Dag<(), ()> = Dag::new();
        let s = g.add_node(());
        let x = g.add_node(());
        let t = g.add_node(());
        g.add_parallel_edges(s, x, (), n as usize).unwrap();
        g.add_edge(x, t, ()).unwrap();
        let inst = Instance::race_dag(&g, Duration::recursive_binary).unwrap();
        to_arc_form(&inst).0
    }

    #[test]
    fn exact_solutions_certify_on_reducer_instances() {
        let arc = recbinary_star(64);
        for budget in [0u64, 2, 4, 8, 16] {
            let ex = rtt_core::exact::solve_exact(&arc, budget);
            let cert = certify_solution(&arc, &ex.solution).expect("finite instance");
            assert!(
                cert.holds(),
                "budget {budget}: simulated {} > bound {}",
                cert.simulated,
                cert.bound
            );
            assert_eq!(cert.bound, ex.solution.makespan);
        }
    }

    #[test]
    fn zero_budget_expansion_is_the_raw_race_dag() {
        let arc = recbinary_star(16);
        let ex = rtt_core::exact::solve_exact(&arc, 0);
        let cert = certify_solution(&arc, &ex.solution).unwrap();
        // no reducers: the hub cell serializes all 16 updates, plus the
        // single update of the sink job
        assert_eq!(cert.bound, 16 + 1);
        assert_eq!(cert.simulated, cert.bound, "chains cannot pipeline");
    }

    #[test]
    fn reducer_gadget_path_matches_eq3() {
        let arc = recbinary_star(64);
        // budget 8 buys height 3: ⌈64/8⌉ + 3 + 1 = 12 on the hub
        let ex = rtt_core::exact::solve_exact(&arc, 8);
        let cert = certify_solution(&arc, &ex.solution).unwrap();
        assert_eq!(ex.solution.makespan, 12 + 1);
        assert!(cert.simulated <= cert.bound);
        assert!(cert.peak_parallelism >= 8, "leaf cells must run in parallel");
    }

    #[test]
    fn staggered_updates_pipeline_strictly_below_the_bound() {
        // race DAG: input i0 feeds a (3 updates) and b (1 update); z
        // applies one update from each. Analytically z starts after a:
        // bound = 3 + 2 = 5. In the §1 execution z drains b's update
        // while a is still running and finishes at 4.
        let mut g: Dag<(), ()> = Dag::new();
        let i0 = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let z = g.add_node(());
        g.add_parallel_edges(i0, a, (), 3).unwrap();
        g.add_edge(i0, b, ()).unwrap();
        g.add_edge(a, z, ()).unwrap();
        g.add_edge(b, z, ()).unwrap();
        let inst =
            Instance::race_dag_normalized(&g, Duration::recursive_binary).unwrap();
        let arc = to_arc_form(&inst).0;
        let ex = rtt_core::exact::solve_exact(&arc, 0);
        assert_eq!(ex.solution.makespan, 5);
        let cert = certify_solution(&arc, &ex.solution).unwrap();
        assert_eq!(
            cert.simulated, 4,
            "per-update wiring must let z pipeline below the bound"
        );
    }

    #[test]
    fn kway_gadget_certifies() {
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::labeled("s", Duration::zero()));
        let x = g.add_node(Job::labeled("x", Duration::kway(100)));
        let t = g.add_node(Job::labeled("t", Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(x, t, ()).unwrap();
        let arc = to_arc_form(&Instance::new(g).unwrap()).0;
        for budget in [0u64, 2, 5, 10, 100] {
            let ex = rtt_core::exact::solve_exact(&arc, budget);
            let cert = certify_solution(&arc, &ex.solution).unwrap();
            assert!(cert.holds(), "budget {budget}: {cert:?}");
        }
    }

    #[test]
    fn infinite_durations_skip_certification() {
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(
            s,
            t,
            Activity::new(Duration::constant(rtt_duration::INF)),
        )
        .unwrap();
        let arc = ArcInstance::new(g).unwrap();
        let sol = Solution {
            arc_flows: vec![0],
            edge_times: vec![rtt_duration::INF],
            makespan: rtt_duration::INF,
            budget_used: 0,
        };
        assert!(certify_solution(&arc, &sol).is_none());
    }

    #[test]
    fn noreuse_solutions_certify_at_their_levels() {
        let arc = recbinary_star(64);
        for budget in [0u64, 2, 4, 8, 16] {
            let sol = rtt_core::solve_noreuse_exact(&arc, budget);
            rtt_core::regimes::validate_noreuse(&arc, &sol).unwrap();
            let cert = certify_noreuse(&arc, &sol).expect("finite instance");
            assert!(
                cert.holds(),
                "budget {budget}: simulated {} > bound {}",
                cert.simulated,
                cert.bound
            );
            assert_eq!(cert.bound, sol.makespan);
        }
        // budget 0 anchors the curve: the replay is the raw race DAG
        let sol0 = rtt_core::solve_noreuse_exact(&arc, 0);
        let cert0 = certify_noreuse(&arc, &sol0).unwrap();
        assert_eq!(cert0.bound, arc.base_makespan());
        assert_eq!(cert0.simulated, cert0.bound, "chains cannot pipeline");
    }

    #[test]
    fn global_schedules_certify_schedule_granularly() {
        let arc = recbinary_star(64);
        for budget in [0u64, 2, 4, 8, 16] {
            for policy in [rtt_core::GlobalPolicy::Eager, rtt_core::GlobalPolicy::Patient] {
                let s = rtt_core::global_reuse_schedule(&arc, budget, policy);
                rtt_core::verify_global_schedule(&arc, budget, &s).unwrap();
                let cert = certify_schedule(&arc, &s).expect("finite instance");
                assert!(
                    cert.holds(),
                    "budget {budget} {policy:?}: simulated {} > bound {}",
                    cert.simulated,
                    cert.bound
                );
                assert_eq!(cert.bound, s.makespan);
            }
        }
    }

    #[test]
    fn event_guard_skips_oversized_expansions_only() {
        // the certify path itself never builds a 50M-event expansion
        // from the repo's workloads; the guard is exercised by shrinking
        // it conceptually — here we just pin that a normal expansion is
        // orders of magnitude below it
        let arc = recbinary_star(64);
        let ex = rtt_core::exact::solve_exact(&arc, 8);
        let (g, works) = expand_solution(&arc, &ex.solution);
        // the guard's own metric, not a re-derivation of it
        let events = ExecModel::from_works(&g, &works).event_count();
        assert!(events < SIM_EVENT_GUARD / 1000, "expansion events: {events}");
    }

    #[test]
    fn best_height_and_arity_match_duration_envelopes() {
        for n in [6u64, 8, 64, 100, 1000] {
            let rec = Duration::recursive_binary(n);
            let kw = Duration::kway(n);
            for r in 0..=40u64 {
                let h = best_recbinary_height(n, r);
                let t_h = if h == 0 { n } else { raw_recursive_binary_time(n, h) };
                assert_eq!(t_h, rec.time(r), "recbinary n={n} r={r}");
                let k = best_kway_arity(n, r);
                let t_k = if k == 0 { n } else { raw_kway_time(n, k) };
                assert_eq!(t_k, kw.time(r), "kway n={n} r={r}");
            }
        }
    }
}
