//! Simulation-backed certification of solved reports (Observation 1.1).
//!
//! Analytic makespans in this repo are longest-path formulas over
//! duration functions. Observation 1.1 says the *actual* §1 execution —
//! memory cells applying one update per tick behind their locks — never
//! takes longer than that bound. This module closes the loop: every
//! certified [`Solution`] is **physically expanded** into an
//! update-granular DAG (each job becomes the reducer gadget its
//! allocation buys) and executed by [`rtt_sim::exec::simulate_works`]
//! with unbounded processors. The simulated finish must be `≤` the
//! reported makespan; a violation is an engine bug and panics, like
//! every other certification failure in [`crate::solver`].
//!
//! # The expansion
//!
//! Arc-instance nodes become zero-work junctions (pure precedence);
//! each activity arc `e` with claimed duration `t_e` and routed flow
//! `f_e` becomes a gadget whose longest path is at most `t_e`:
//!
//! * **recursive binary** (Eq. 3): the §1 sibling reducer at the best
//!   height `2^h ≤ f_e` — `2^h` leaf cells splitting the updates, `h`
//!   one-update sibling merges, one final root update
//!   (`⌈n/2^h⌉ + h + 1`);
//! * **k-way** (Eq. 2): the best `k ≤ min(f_e, ⌊√n⌋)` parallel cells
//!   feeding `k` serial merge updates into the shared variable
//!   (`⌈n/k⌉ + k`);
//! * **general step / constant**: one serialized cell applying `t_e`
//!   updates (the claimed duration taken literally).
//!
//! Per-gadget paths are `≤ t_e` (validation guarantees
//! `t_e ≥ t_e(f_e)`), so every expanded source→sink path is `≤` the
//! claimed makespan — and the simulation can only *pipeline below*
//! that, which is exactly what the certificate records.

use rtt_core::{ArcInstance, Solution};
use rtt_duration::{
    is_infinite, raw_kway_time, raw_recursive_binary_time, recursive_binary_max_height,
    DurationKind, Resource, Time,
};
use rtt_dag::{Dag, NodeId};
use rtt_sim::exec::{simulate_works, UNBOUNDED};

/// Expansions whose estimated simulation cost — total updates ×
/// expanded nodes, the tick-loop's worst case ([`simulate_works`]
/// rescans every node per tick) — exceeds this are not simulated (the
/// certificate is skipped, not falsified), so serving latency stays
/// bounded on pathological inputs.
pub const SIM_COST_CAP: u64 = 200_000_000;

/// The result of simulating a reducer-expanded solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimCertificate {
    /// Simulated finish tick with unbounded processors.
    pub simulated: Time,
    /// The reported (analytic) makespan the simulation must not exceed.
    pub bound: Time,
    /// Nodes of the expanded update-granular DAG.
    pub expanded_nodes: usize,
    /// Total updates the simulation applied.
    pub expanded_updates: u64,
    /// Peak simultaneously busy cells.
    pub peak_parallelism: usize,
}

impl SimCertificate {
    /// Whether Observation 1.1 held (always true for certificates the
    /// engine emits — a violation panics instead).
    pub fn holds(&self) -> bool {
        self.simulated <= self.bound
    }
}

/// Best sibling-reducer height affordable with `r` units on a job of
/// `n` updates: the `h` minimizing Eq. 3 subject to `2^h ≤ r`.
fn best_recbinary_height(n: Time, r: Resource) -> u32 {
    let cap = recursive_binary_max_height(n);
    let mut best_h = 0u32;
    let mut best_t = n;
    for h in 1..=cap {
        if (1u64 << h) > r {
            break;
        }
        let t = raw_recursive_binary_time(n, h);
        if t < best_t {
            best_t = t;
            best_h = h;
        }
    }
    best_h
}

/// Best k-way split arity affordable with `r` units on a job of `n`
/// updates: the `k` minimizing Eq. 2 subject to `k ≤ r` (0 = no split).
fn best_kway_arity(n: Time, r: Resource) -> u64 {
    let mut best_k = 0u64;
    let mut best_t = n;
    for k in 2..=r {
        if k.saturating_mul(k) > n {
            break; // past ⌊√n⌋ Eq. 2 is flat: no further improvement
        }
        let t = raw_kway_time(n, k);
        if t < best_t {
            best_t = t;
            best_k = k;
        }
    }
    best_k
}

/// How a gadget's entry cells receive their updates.
enum Entry {
    /// All updates release when the source junction completes — the
    /// conservative gate, used whenever update provenance is unknown.
    Junction,
    /// One in-edge per incoming update of the source junction, wired
    /// round-robin across the entry cells — the §1 semantics: a cell
    /// drains updates as individual predecessors complete, so staggered
    /// updates pipeline (this is what lets the simulation run strictly
    /// below the makespan bound).
    PerUpdate,
}

/// Physically expands a certified solution into an update-granular DAG
/// plus its per-node work vector (see the module docs for the gadgets).
///
/// Two passes: gadget construction first (recording, per arc, the
/// *tail* node whose completion signals the activity's completion),
/// then entry wiring — pipelined per-update edges from the predecessor
/// arcs' tails when the entry cells' total work equals the source
/// junction's in-degree (each in-arc is then exactly one update, the
/// race-DAG convention), the junction gate otherwise.
pub fn expand_solution(arc: &ArcInstance, sol: &Solution) -> (Dag<(), ()>, Vec<Time>) {
    let d = arc.dag();
    let mut g: Dag<(), ()> = Dag::with_capacity(d.node_count(), d.edge_count());
    // junctions, one per original node, ids preserved, zero work
    let mut works: Vec<Time> = vec![0; d.node_count()];
    for _ in d.node_ids() {
        g.add_node(());
    }
    let cell = |g: &mut Dag<(), ()>, works: &mut Vec<Time>, w: Time| -> NodeId {
        let v = g.add_node(());
        works.push(w);
        v
    };
    // which gadget an arc expands into, decided once per arc
    enum Gadget {
        /// Sibling reducer at height `h` on `n` updates.
        Recbinary { n: Time, h: u32 },
        /// `k`-way split on `n` updates.
        Kway { n: Time, k: u64 },
        /// Serialized cell at the claimed duration (or a direct edge).
        Serial,
    }
    // pass 1: gadgets (internal structure + exit into the dst junction)
    let mut tail: Vec<NodeId> = Vec::with_capacity(d.edge_count());
    let mut entries: Vec<(Entry, Vec<NodeId>)> = Vec::with_capacity(d.edge_count());
    for e in d.edge_refs() {
        let t = sol.edge_times[e.id.index()];
        let r = sol.arc_flows[e.id.index()];
        let (u, v) = (e.src, e.dst);
        let in_deg = d.in_degree(u) as u64;
        let gadget = match e.weight.duration.kind() {
            DurationKind::RecursiveBinary { base: n } => match best_recbinary_height(n, r) {
                0 => Gadget::Serial,
                h => Gadget::Recbinary { n, h },
            },
            DurationKind::KWay { base: n } => match best_kway_arity(n, r) {
                0 | 1 => Gadget::Serial,
                k => Gadget::Kway { n, k },
            },
            DurationKind::Step => Gadget::Serial,
        };
        match gadget {
            // the same sibling shape rtt_duration::expand builds for
            // node DAGs (leaf ceil-split, pairwise one-update merges,
            // final root update) — reproduced here on the arc form
            // because this gadget additionally needs the junction/entry
            // wiring; crates/bench race_perf and the tests below pin it
            // to Eq. 3 so the two constructions cannot drift silently
            Gadget::Recbinary { n, h } => {
                let leaves: Vec<NodeId> = (0..1u64 << h)
                    .map(|_| cell(&mut g, &mut works, 0)) // shares assigned at wiring
                    .collect();
                // sibling merges: one update each, gated on both children
                let mut level = leaves.clone();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len() / 2);
                    for pair in level.chunks(2) {
                        let m = cell(&mut g, &mut works, 1);
                        for &c in pair {
                            g.add_edge(c, m, ()).expect("fresh node");
                        }
                        next.push(m);
                    }
                    level = next;
                }
                // the survivor's final update of the shared variable
                let root = cell(&mut g, &mut works, 1);
                g.add_edge(level[0], root, ()).expect("fresh node");
                g.add_edge(root, v, ()).expect("junction exists");
                let mode = if n == in_deg && n > 0 {
                    Entry::PerUpdate
                } else {
                    Entry::Junction
                };
                // leaf works: ceil-split of n, matching the wiring order
                let l = leaves.len() as u64;
                for (i, &leaf) in leaves.iter().enumerate() {
                    works[leaf.index()] = n / l + u64::from((i as u64) < n % l);
                }
                tail.push(root);
                entries.push((mode, leaves));
            }
            Gadget::Kway { n, k } => {
                // the shared variable absorbs one merge update per cell
                let hub = cell(&mut g, &mut works, k);
                let cells: Vec<NodeId> = (0..k)
                    .map(|i| {
                        let share = n / k + u64::from(i < n % k);
                        let c = cell(&mut g, &mut works, share);
                        g.add_edge(c, hub, ()).expect("fresh node");
                        c
                    })
                    .collect();
                g.add_edge(hub, v, ()).expect("junction exists");
                let mode = if n == in_deg && n > 0 {
                    Entry::PerUpdate
                } else {
                    Entry::Junction
                };
                tail.push(hub);
                entries.push((mode, cells));
            }
            Gadget::Serial => {
                if t == 0 {
                    // pure precedence (dummy arcs): completes with u
                    g.add_edge(u, v, ()).expect("junctions exist");
                    tail.push(u);
                    entries.push((Entry::Junction, Vec::new()));
                } else {
                    // lock-serialized cell at the claimed duration;
                    // per-update wiring applies when the claim equals
                    // the update count (no reducer engaged)
                    let c = cell(&mut g, &mut works, t);
                    g.add_edge(c, v, ()).expect("junction exists");
                    let mode = if t == in_deg {
                        Entry::PerUpdate
                    } else {
                        Entry::Junction
                    };
                    tail.push(c);
                    entries.push((mode, vec![c]));
                }
            }
        }
    }
    // pass 2: entry wiring
    for e in d.edge_refs() {
        let (mode, targets) = &entries[e.id.index()];
        if targets.is_empty() {
            continue; // direct edge, fully wired
        }
        match mode {
            Entry::Junction => {
                for &c in targets {
                    g.add_edge(e.src, c, ()).expect("nodes exist");
                }
            }
            Entry::PerUpdate => {
                // one edge per incoming update, round-robin over the
                // entry cells (index j lands on cell j mod L, which is
                // how the ceil-split shares were assigned)
                for (j, &in_arc) in d.in_edges(e.src).iter().enumerate() {
                    let c = targets[j % targets.len()];
                    g.add_edge(tail[in_arc.index()], c, ()).expect("nodes exist");
                }
            }
        }
    }
    (g, works)
}

/// Simulates the reducer expansion of `sol` and returns the
/// Observation 1.1 certificate, or `None` when the solution cannot be
/// simulated (infinite durations, or an expansion past
/// [`SIM_COST_CAP`]).
pub fn certify_solution(arc: &ArcInstance, sol: &Solution) -> Option<SimCertificate> {
    if is_infinite(sol.makespan) || sol.edge_times.iter().any(|&t| is_infinite(t)) {
        return None;
    }
    let (g, works) = expand_solution(arc, sol);
    let cost = works
        .iter()
        .sum::<u64>()
        .saturating_mul(g.node_count() as u64);
    if cost > SIM_COST_CAP {
        return None;
    }
    let res = simulate_works(&g, &works, UNBOUNDED);
    Some(SimCertificate {
        simulated: res.finish,
        bound: sol.makespan,
        expanded_nodes: g.node_count(),
        expanded_updates: res.updates_applied,
        peak_parallelism: res.peak_parallelism,
    })
}

/// Attaches the simulation certificate to a solved report that carries
/// a routed solution, panicking if Observation 1.1 fails (an engine
/// bug, treated like every other certification failure).
pub(crate) fn attach(arc: &ArcInstance, report: &mut crate::SolveReport) {
    if report.status != crate::Status::Solved {
        return;
    }
    let Some(sol) = &report.solution else {
        return;
    };
    if let Some(cert) = certify_solution(arc, sol) {
        assert!(
            cert.holds(),
            "Observation 1.1 violated: simulated {} > reported makespan {} \
             (solver {}, request {})",
            cert.simulated,
            cert.bound,
            report.solver,
            report.id,
        );
        report.sim = Some(cert);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_core::instance::{Activity, Job};
    use rtt_core::{to_arc_form, Instance};
    use rtt_duration::Duration;

    /// A star of `n` updates into one recbinary cell, via node form.
    fn recbinary_star(n: u64) -> ArcInstance {
        let mut g: Dag<(), ()> = Dag::new();
        let s = g.add_node(());
        let x = g.add_node(());
        let t = g.add_node(());
        g.add_parallel_edges(s, x, (), n as usize).unwrap();
        g.add_edge(x, t, ()).unwrap();
        let inst = Instance::race_dag(&g, Duration::recursive_binary).unwrap();
        to_arc_form(&inst).0
    }

    #[test]
    fn exact_solutions_certify_on_reducer_instances() {
        let arc = recbinary_star(64);
        for budget in [0u64, 2, 4, 8, 16] {
            let ex = rtt_core::exact::solve_exact(&arc, budget);
            let cert = certify_solution(&arc, &ex.solution).expect("finite instance");
            assert!(
                cert.holds(),
                "budget {budget}: simulated {} > bound {}",
                cert.simulated,
                cert.bound
            );
            assert_eq!(cert.bound, ex.solution.makespan);
        }
    }

    #[test]
    fn zero_budget_expansion_is_the_raw_race_dag() {
        let arc = recbinary_star(16);
        let ex = rtt_core::exact::solve_exact(&arc, 0);
        let cert = certify_solution(&arc, &ex.solution).unwrap();
        // no reducers: the hub cell serializes all 16 updates, plus the
        // single update of the sink job
        assert_eq!(cert.bound, 16 + 1);
        assert_eq!(cert.simulated, cert.bound, "chains cannot pipeline");
    }

    #[test]
    fn reducer_gadget_path_matches_eq3() {
        let arc = recbinary_star(64);
        // budget 8 buys height 3: ⌈64/8⌉ + 3 + 1 = 12 on the hub
        let ex = rtt_core::exact::solve_exact(&arc, 8);
        let cert = certify_solution(&arc, &ex.solution).unwrap();
        assert_eq!(ex.solution.makespan, 12 + 1);
        assert!(cert.simulated <= cert.bound);
        assert!(cert.peak_parallelism >= 8, "leaf cells must run in parallel");
    }

    #[test]
    fn staggered_updates_pipeline_strictly_below_the_bound() {
        // race DAG: input i0 feeds a (3 updates) and b (1 update); z
        // applies one update from each. Analytically z starts after a:
        // bound = 3 + 2 = 5. In the §1 execution z drains b's update
        // while a is still running and finishes at 4.
        let mut g: Dag<(), ()> = Dag::new();
        let i0 = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let z = g.add_node(());
        g.add_parallel_edges(i0, a, (), 3).unwrap();
        g.add_edge(i0, b, ()).unwrap();
        g.add_edge(a, z, ()).unwrap();
        g.add_edge(b, z, ()).unwrap();
        let inst =
            Instance::race_dag_normalized(&g, Duration::recursive_binary).unwrap();
        let arc = to_arc_form(&inst).0;
        let ex = rtt_core::exact::solve_exact(&arc, 0);
        assert_eq!(ex.solution.makespan, 5);
        let cert = certify_solution(&arc, &ex.solution).unwrap();
        assert_eq!(
            cert.simulated, 4,
            "per-update wiring must let z pipeline below the bound"
        );
    }

    #[test]
    fn kway_gadget_certifies() {
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::labeled("s", Duration::zero()));
        let x = g.add_node(Job::labeled("x", Duration::kway(100)));
        let t = g.add_node(Job::labeled("t", Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(x, t, ()).unwrap();
        let arc = to_arc_form(&Instance::new(g).unwrap()).0;
        for budget in [0u64, 2, 5, 10, 100] {
            let ex = rtt_core::exact::solve_exact(&arc, budget);
            let cert = certify_solution(&arc, &ex.solution).unwrap();
            assert!(cert.holds(), "budget {budget}: {cert:?}");
        }
    }

    #[test]
    fn infinite_durations_skip_certification() {
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(
            s,
            t,
            Activity::new(Duration::constant(rtt_duration::INF)),
        )
        .unwrap();
        let arc = ArcInstance::new(g).unwrap();
        let sol = Solution {
            arc_flows: vec![0],
            edge_times: vec![rtt_duration::INF],
            makespan: rtt_duration::INF,
            budget_used: 0,
        };
        assert!(certify_solution(&arc, &sol).is_none());
    }

    #[test]
    fn best_height_and_arity_match_duration_envelopes() {
        for n in [6u64, 8, 64, 100, 1000] {
            let rec = Duration::recursive_binary(n);
            let kw = Duration::kway(n);
            for r in 0..=40u64 {
                let h = best_recbinary_height(n, r);
                let t_h = if h == 0 { n } else { raw_recursive_binary_time(n, h) };
                assert_eq!(t_h, rec.time(r), "recbinary n={n} r={r}");
                let k = best_kway_arity(n, r);
                let t_k = if k == 0 { n } else { raw_kway_time(n, k) };
                assert_eq!(t_k, kw.time(r), "kway n={n} r={r}");
            }
        }
    }
}
