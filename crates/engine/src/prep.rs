//! Shared per-instance preprocessing.
//!
//! Every solver pipeline starts from the same derived artifacts of an
//! [`ArcInstance`]: the two-tuple expansion `D''` (§3.1, consumed by
//! every LP-based solver), the series-parallel decomposition tree
//! (§3.4), and a topological order. A [`PreparedInstance`] computes each
//! of them **once**, lazily, behind [`OnceLock`]s, so any number of
//! solvers — on any number of executor threads — share one copy.
//!
//! [`PrepCache`] deduplicates `PreparedInstance`s across *requests*: a
//! batch that asks five solvers three budgets each about one instance
//! performs one expansion and one decomposition, not fifteen.

use rtt_core::transform::expand_two_tuples;
use rtt_core::{ArcInstance, CanonicalForm, TwoTupleInstance};
use rtt_dag::sp::{decompose, SpTree};
use rtt_dag::NodeId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A cached LP warm-start seed: the makespan-LP template (budget row
/// tagged) plus the optimal basis of the most recent sweep point.
///
/// # Warm-start invariants
///
/// The basis is valid for **any** budget on this instance: the
/// template's constraint matrix depends only on the instance (which a
/// `PreparedInstance` never mutates), and a budget change rewrites one
/// right-hand side — exactly the change [`rtt_lp::Basis`] warm starts
/// accept. The cache is therefore evicted only by replacement: each
/// sweep leaves its final basis for the next. If the basis were ever
/// stale (it cannot be today — the key is the instance itself), the LP
/// engine's own shape/dual-feasibility checks would reject it and
/// solve cold, so a bad cache degrades speed, never correctness.
///
/// Kept out of the per-request batch path on purpose: batch NDJSON is
/// byte-stable across thread counts, and a *shared* warm chain would
/// make report bytes depend on which worker got there first. Only the
/// sweep/curve path — sequential within one request — reads it.
#[derive(Debug)]
pub struct LpWarmState {
    /// The budget-row-tagged LP template.
    pub lp: rtt_core::MakespanLp,
    /// Optimal basis of the last solved sweep point.
    pub basis: Option<rtt_lp::Basis>,
}

/// An instance plus its lazily computed, shareable preprocessing.
#[derive(Debug)]
pub struct PreparedInstance {
    arc: ArcInstance,
    tt: OnceLock<TwoTupleInstance>,
    sp: OnceLock<Option<SpTree>>,
    topo: OnceLock<Vec<NodeId>>,
    canonical: OnceLock<CanonicalForm>,
    shape: OnceLock<CanonicalForm>,
    lp_warm: Mutex<Option<LpWarmState>>,
    /// Times a component accessor found its artifact already computed.
    reuses: AtomicU64,
    /// Times a component accessor had to compute its artifact.
    computes: AtomicU64,
}

impl PreparedInstance {
    /// Wraps an instance with empty (not-yet-computed) preprocessing.
    pub fn new(arc: ArcInstance) -> Self {
        PreparedInstance {
            arc,
            tt: OnceLock::new(),
            sp: OnceLock::new(),
            topo: OnceLock::new(),
            canonical: OnceLock::new(),
            shape: OnceLock::new(),
            lp_warm: Mutex::new(None),
            reuses: AtomicU64::new(0),
            computes: AtomicU64::new(0),
        }
    }

    /// The underlying instance.
    pub fn arc(&self) -> &ArcInstance {
        &self.arc
    }

    fn track<'a, T>(&self, cell: &'a OnceLock<T>, compute: impl FnOnce() -> T) -> &'a T {
        if let Some(v) = cell.get() {
            self.reuses.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        // under a race, only one closure's result is kept; counting both
        // as computes slightly over-reports, which is the honest side
        self.computes.fetch_add(1, Ordering::Relaxed);
        cell.get_or_init(compute)
    }

    /// The two-tuple expansion `D''`, computed on first use.
    pub fn tt(&self) -> &TwoTupleInstance {
        self.track(&self.tt, || expand_two_tuples(&self.arc))
    }

    /// The series-parallel decomposition tree, or `None` if the
    /// instance is not two-terminal series-parallel. Computed on first
    /// use.
    pub fn sp_tree(&self) -> Option<&SpTree> {
        self.track(&self.sp, || {
            decompose(self.arc.dag(), self.arc.source(), self.arc.sink())
        })
        .as_ref()
    }

    /// A topological order of the instance DAG, computed on first use.
    pub fn topo(&self) -> &[NodeId] {
        self.track(&self.topo, || {
            rtt_dag::topo_order(self.arc.dag()).expect("instances are acyclic")
        })
        .as_slice()
    }

    /// The instance's canonical form ([`rtt_core::canonical_form`]):
    /// the relabeling-invariant key string plus its fingerprint digest,
    /// computed on first use. This is what the cross-request
    /// [`crate::reuse::ReuseCache`] keys on, so two requests carrying
    /// byte-different but structurally identical instances land on the
    /// same cache line.
    pub fn canonical(&self) -> &CanonicalForm {
        self.track(&self.canonical, || rtt_core::canonical_form(&self.arc))
    }

    /// The instance's shape form ([`rtt_core::shape_form`]): durations
    /// reduced to tuple counts, so duration-perturbed siblings share a
    /// key. This is the warm-basis tier's compatibility class — equal
    /// shape keys mean LP 6–10 problems of identical layout, whose
    /// bases are mutually offerable (and install-verified). Computed on
    /// first use.
    pub fn shape(&self) -> &CanonicalForm {
        self.track(&self.shape, || rtt_core::shape_form(&self.arc))
    }

    /// Takes the cached LP warm-start state (template + last basis),
    /// building the template on first use. The caller runs its sweep on
    /// it and is expected to [`PreparedInstance::put_lp_warm`] it back
    /// with the final basis — see [`LpWarmState`] for the invariants.
    /// Taking (rather than borrowing) keeps the lock scope tiny and
    /// serializes concurrent sweeps onto disjoint templates.
    pub fn take_lp_warm(&self) -> LpWarmState {
        let mut slot = self.lp_warm.lock().expect("lp warm state poisoned");
        match slot.take() {
            Some(state) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                state
            }
            None => {
                self.computes.fetch_add(1, Ordering::Relaxed);
                drop(slot);
                LpWarmState {
                    lp: rtt_core::MakespanLp::new(self.tt()),
                    basis: None,
                }
            }
        }
    }

    /// Returns a sweep's final state to the cache so the next sweep on
    /// this instance warm-starts from it.
    pub fn put_lp_warm(&self, state: LpWarmState) {
        let mut slot = self.lp_warm.lock().expect("lp warm state poisoned");
        *slot = Some(state);
    }

    /// `(reuses, computes)` of the lazy artifacts so far.
    pub fn prep_counters(&self) -> (u64, u64) {
        (
            self.reuses.load(Ordering::Relaxed),
            self.computes.load(Ordering::Relaxed),
        )
    }
}

/// Hit/miss statistics of a [`PrepCache`] (instance-level) plus the
/// aggregated artifact-level counters of its entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests that found their instance already prepared.
    pub instance_hits: u64,
    /// Requests that inserted a fresh instance.
    pub instance_misses: u64,
    /// Artifact accesses that reused an already-computed artifact.
    pub artifact_reuses: u64,
    /// Artifact accesses that computed the artifact.
    pub artifact_computes: u64,
    /// Entries evicted to stay within the cache's capacity bound.
    pub evicted: u64,
}

impl CacheStats {
    /// Instance-level hit rate in `[0, 1]` (0 when empty).
    pub fn instance_hit_rate(&self) -> f64 {
        let total = self.instance_hits + self.instance_misses;
        if total == 0 {
            0.0
        } else {
            self.instance_hits as f64 / total as f64
        }
    }

    /// Artifact-level reuse rate in `[0, 1]` (0 when empty).
    pub fn artifact_reuse_rate(&self) -> f64 {
        let total = self.artifact_reuses + self.artifact_computes;
        if total == 0 {
            0.0
        } else {
            self.artifact_reuses as f64 / total as f64
        }
    }
}

/// The map behind [`PrepCache`]: entries stamped with a logical access
/// tick, so eviction can pick the least-recently-used entry without any
/// wall-clock dependence.
#[derive(Debug, Default)]
struct LruEntries {
    map: HashMap<String, (Arc<PreparedInstance>, u64)>,
    tick: u64,
}

impl LruEntries {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Key of the eviction victim: smallest `(last_access, key)`. The
    /// key tiebreak makes eviction **deterministic** even if two
    /// entries ever carry the same stamp.
    fn victim(&self) -> Option<String> {
        self.map
            .iter()
            .map(|(k, (_, last))| (*last, k))
            .min()
            .map(|(_, k)| k.clone())
    }
}

/// Deduplicates [`PreparedInstance`]s by a caller-chosen key —
/// typically the canonical serialization of the instance itself. The
/// full key is stored and compared (not a hash of it), so distinct
/// instances can never silently share an entry. Thread-safe;
/// handed-out entries are `Arc`s, so they stay valid however long
/// requests keep them — eviction drops the cache's reference, never
/// the instance under a live request.
///
/// # Capacity and eviction
///
/// [`PrepCache::with_capacity`] bounds the number of resident entries;
/// inserting past the bound evicts the least-recently-used entry
/// (ties broken by key, so eviction order is deterministic for a
/// deterministic access sequence). Eviction snapshots the victim's
/// artifact counters into the cache-wide totals first, so
/// [`PrepCache::stats`] never goes backwards. Like every cache in this
/// workspace, eviction changes **cost, never bytes**: a re-requested
/// evicted instance is simply prepared again.
#[derive(Debug, Default)]
pub struct PrepCache {
    entries: Mutex<LruEntries>,
    /// Max resident entries; `None` is unbounded.
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted: AtomicU64,
    /// Artifact counters inherited from evicted entries.
    dead_reuses: AtomicU64,
    dead_computes: AtomicU64,
}

impl PrepCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` prepared instances
    /// (`0` is treated as 1 — a cache that can hold nothing would turn
    /// every request into a miss while still paying the lock).
    pub fn with_capacity(capacity: usize) -> Self {
        PrepCache {
            capacity: Some(capacity.max(1)),
            ..Self::default()
        }
    }

    /// Returns the cached instance for `key`, if present (counts a
    /// hit and refreshes the entry's LRU stamp; a `None` is not
    /// counted — pair with [`PrepCache::get_or_insert`], which records
    /// the miss).
    pub fn get(&self, key: &str) -> Option<Arc<PreparedInstance>> {
        let mut entries = self.entries.lock().expect("prep cache poisoned");
        let tick = entries.touch();
        let hit = entries.map.get_mut(key).map(|(prep, last)| {
            *last = tick;
            Arc::clone(prep)
        });
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Returns the prepared instance for `key`, building it with
    /// `build` on first sight of the key. May evict the
    /// least-recently-used entry on insert if the cache is at capacity.
    pub fn get_or_insert(
        &self,
        key: &str,
        build: impl FnOnce() -> ArcInstance,
    ) -> Arc<PreparedInstance> {
        let mut entries = self.entries.lock().expect("prep cache poisoned");
        let tick = entries.touch();
        if let Some((hit, last)) = entries.map.get_mut(key) {
            *last = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(cap) = self.capacity {
            while entries.map.len() >= cap {
                let victim = entries.victim().expect("cap >= 1, map non-empty");
                if let Some((dead, _)) = entries.map.remove(&victim) {
                    let (r, c) = dead.prep_counters();
                    self.dead_reuses.fetch_add(r, Ordering::Relaxed);
                    self.dead_computes.fetch_add(c, Ordering::Relaxed);
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let prep = Arc::new(PreparedInstance::new(build()));
        entries.map.insert(key.to_string(), (Arc::clone(&prep), tick));
        prep
    }

    /// Number of distinct instances currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("prep cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cache statistics, including the artifact
    /// counters aggregated over all cached entries (plus those
    /// snapshotted from evicted ones).
    pub fn stats(&self) -> CacheStats {
        let mut reuses = self.dead_reuses.load(Ordering::Relaxed);
        let mut computes = self.dead_computes.load(Ordering::Relaxed);
        for (prep, _) in self.entries.lock().expect("prep cache poisoned").map.values() {
            let (r, c) = prep.prep_counters();
            reuses += r;
            computes += c;
        }
        CacheStats {
            instance_hits: self.hits.load(Ordering::Relaxed),
            instance_misses: self.misses.load(Ordering::Relaxed),
            artifact_reuses: reuses,
            artifact_computes: computes,
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_core::instance::Activity;
    use rtt_dag::Dag;
    use rtt_duration::Duration;

    fn tiny() -> ArcInstance {
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, Activity::new(Duration::two_point(5, 2, 1)))
            .unwrap();
        ArcInstance::new(g).unwrap()
    }

    #[test]
    fn artifacts_compute_once_and_reuse() {
        let prep = PreparedInstance::new(tiny());
        assert_eq!(prep.prep_counters(), (0, 0));
        let m1 = prep.tt().dag.edge_count();
        let m2 = prep.tt().dag.edge_count();
        assert_eq!(m1, m2);
        assert!(prep.sp_tree().is_some());
        assert_eq!(prep.topo().len(), 2);
        let (reuses, computes) = prep.prep_counters();
        assert_eq!(computes, 3, "tt, sp, topo each computed once");
        assert_eq!(reuses, 1, "second tt() call reused");
    }

    #[test]
    fn cache_dedupes_by_key() {
        let cache = PrepCache::new();
        let a = cache.get_or_insert("k7", tiny);
        let b = cache.get_or_insert("k7", || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.get_or_insert("k8", tiny);
        assert!(!Arc::ptr_eq(&a, &c));
        let stats = cache.stats();
        assert_eq!(stats.instance_hits, 1);
        assert_eq!(stats.instance_misses, 2);
        assert_eq!(stats.evicted, 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = PrepCache::with_capacity(2);
        cache.get_or_insert("a", tiny);
        cache.get_or_insert("b", tiny);
        // touch "a" so "b" becomes the LRU victim
        assert!(cache.get("a").is_some());
        cache.get_or_insert("c", tiny);
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b").is_none(), "b was least recently used");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().evicted, 1);
    }

    #[test]
    fn eviction_keeps_artifact_counters() {
        let cache = PrepCache::with_capacity(1);
        let a = cache.get_or_insert("a", tiny);
        a.tt();
        a.tt(); // one compute, one reuse on the soon-victim
        cache.get_or_insert("b", tiny); // evicts "a"
        let stats = cache.stats();
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.artifact_computes, 1, "snapshotted from evicted entry");
        assert_eq!(stats.artifact_reuses, 1);
        // the evicted Arc stays valid for its holder
        assert_eq!(a.topo().len(), 2);
    }

    #[test]
    fn eviction_order_is_deterministic() {
        let keys = ["k0", "k1", "k2", "k3"];
        let survivors = |order: &[usize]| -> Vec<String> {
            let cache = PrepCache::with_capacity(2);
            for &i in order {
                cache.get_or_insert(keys[i], tiny);
            }
            let mut left: Vec<String> = keys
                .iter()
                .filter(|k| cache.get(k).is_some())
                .map(|k| k.to_string())
                .collect();
            left.sort();
            left
        };
        assert_eq!(
            survivors(&[0, 1, 2, 3]),
            survivors(&[0, 1, 2, 3]),
            "same access sequence, same residents"
        );
        assert_eq!(survivors(&[0, 1, 2, 3]), vec!["k2", "k3"]);
    }

    #[test]
    fn canonical_is_memoized_and_relabeling_invariant() {
        let prep = PreparedInstance::new(tiny());
        let c1 = prep.canonical().digest;
        let c2 = prep.canonical().digest;
        assert_eq!(c1, c2);
        assert_eq!(c1, rtt_core::fingerprint(prep.arc()));
    }
}
