//! Warm-vs-cold property tests for the PR 7 delta-solve path: a warm
//! or crossed-over basis may change *pivot counts*, never the LP
//! optimum or the certified rounded curve.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtt_core::ArcInstance;
use rtt_dag::gen;
use rtt_duration::Duration;
use rtt_engine::{solve_curve, solve_curve_cached, solve_delta_point, PreparedInstance, ReuseCache};

fn generate(kind: usize, family: usize, seed: u64) -> ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = match kind % 3 {
        0 => gen::random_sp(&mut rng, 3).tt,
        1 => gen::layered(&mut rng, 3, 2, 0.4),
        _ => gen::chain(2 + (seed as usize % 3)),
    };
    let fam: fn(u64) -> Duration = match family % 2 {
        0 => Duration::recursive_binary,
        _ => Duration::kway,
    };
    let inst = rtt_core::Instance::race_dag(&tt.dag, fam).expect("generated DAG is valid");
    rtt_core::to_arc_form(&inst).0
}

/// Same topology, every duration's times scaled up: a shape sibling
/// whose basis the cache may cross over to the original.
fn perturbed_sibling(kind: usize, family: usize, seed: u64) -> ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = match kind % 3 {
        0 => gen::random_sp(&mut rng, 3).tt,
        1 => gen::layered(&mut rng, 3, 2, 0.4),
        _ => gen::chain(2 + (seed as usize % 3)),
    };
    // the *other* reducer family over the same DAG perturbs every
    // duration while keeping the topology
    let fam: fn(u64) -> Duration = match family % 2 {
        0 => Duration::kway,
        _ => Duration::recursive_binary,
    };
    let inst = rtt_core::Instance::race_dag(&tt.dag, fam).expect("generated DAG is valid");
    rtt_core::to_arc_form(&inst).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The whole curve solved through the shared warm tier — after a
    /// sibling has already parked a basis under the same shape key —
    /// matches the cold per-instance curve point for point: LP
    /// envelope, rounded makespan, rounded budget.
    #[test]
    fn warm_curve_equals_cold_curve(
        kind in 0usize..3,
        family in 0usize..2,
        seed in 0u64..2_000,
        hi in 2u64..10,
    ) {
        let budgets: Vec<u64> = (0..=hi).collect();
        let alpha = 0.5;

        let cold_prep = PreparedInstance::new(generate(kind, family, seed));
        let cold = solve_curve(&cold_prep, &budgets, alpha).expect("cold curve solves");

        // warm the shared tier with a duration-perturbed sibling, then
        // solve the original through the cache
        let cache = ReuseCache::new(16);
        let sibling = PreparedInstance::new(perturbed_sibling(kind, family, seed));
        solve_curve_cached(&sibling, &budgets, alpha, None, Some(&cache))
            .expect("sibling curve solves");
        let warm_prep = PreparedInstance::new(generate(kind, family, seed));
        let warm = solve_curve_cached(&warm_prep, &budgets, alpha, None, Some(&cache))
            .expect("warm curve solves");

        prop_assert_eq!(cold.len(), warm.len());
        for (c, w) in cold.iter().zip(&warm) {
            prop_assert_eq!(c.budget, w.budget);
            prop_assert!(
                (c.lp_makespan - w.lp_makespan).abs() < 1e-9,
                "budget {}: cold LP {} != warm LP {}",
                c.budget, c.lp_makespan, w.lp_makespan
            );
            prop_assert_eq!(
                c.makespan, w.makespan,
                "budget {}: rounded makespan diverged", c.budget
            );
            prop_assert_eq!(
                c.budget_used, w.budget_used,
                "budget {}: rounded budget diverged", c.budget
            );
        }
    }

    /// `solve_delta_point` — reoptimizing from whatever basis the cache
    /// holds, across shuffled budget jumps and a sibling's parked basis
    /// — always lands on the cold LP optimum.
    #[test]
    fn delta_point_objective_equals_cold(
        kind in 0usize..3,
        family in 0usize..2,
        seed in 0u64..2_000,
        b1 in 0u64..10,
        b2 in 0u64..10,
        b3 in 0u64..10,
    ) {
        let cache = ReuseCache::new(16);
        let prep = PreparedInstance::new(generate(kind, family, seed));
        let sibling = PreparedInstance::new(perturbed_sibling(kind, family, seed));
        // park a sibling basis so the first delta solve crosses over
        solve_delta_point(&sibling, &cache, b1).expect("sibling point solves");

        for b in [b1, b2, b3] {
            let warm = solve_delta_point(&prep, &cache, b).expect("delta point solves");
            let cold_prep = PreparedInstance::new(generate(kind, family, seed));
            let cold = solve_curve(&cold_prep, &[b], 0.5).expect("cold point solves");
            prop_assert!(
                (warm.makespan - cold[0].lp_makespan).abs() < 1e-9,
                "budget {}: delta objective {} != cold {}",
                b, warm.makespan, cold[0].lp_makespan
            );
        }
    }
}
