//! Registry-wide validation property test: on random sp / layered /
//! chain / race instances, **every** registered solver's output must
//! validate, and its certificate factors must hold against the exact
//! optimum and the LP lower bound measured in the same run.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtt_core::{validate, ArcInstance};
use rtt_dag::gen;
use rtt_duration::Duration;
use rtt_engine::{
    BudgetContext, Capability, PreparedInstance, Registry, SolveRequest, SolverSelection, Status,
};
use std::sync::Arc;
use std::time::Instant;

/// Small random instance; sizes keep the exact oracle tractable.
fn generate(kind: usize, family: usize, seed: u64) -> ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = match kind % 4 {
        0 => gen::random_sp(&mut rng, 3 + (seed as usize % 3)).tt,
        1 => gen::layered(&mut rng, 3, 2, 0.4),
        2 => gen::chain(2 + (seed as usize % 4)),
        _ => gen::random_race_dag(&mut rng, 4 + (seed as usize % 3), 4),
    };
    let fam: fn(u64) -> Duration = match family % 2 {
        0 => Duration::recursive_binary,
        _ => Duration::kway,
    };
    let inst = rtt_core::Instance::race_dag(&tt.dag, fam).expect("generated DAG is valid");
    rtt_core::to_arc_form(&inst).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_solver_validates_and_certifies(
        kind in 0usize..4,
        family in 0usize..2,
        seed in 0u64..5_000,
        budget in 0u64..12,
    ) {
        let registry = Registry::standard();
        let arc = generate(kind, family, seed);
        let base = arc.base_makespan();
        let prepared = Arc::new(PreparedInstance::new(arc));
        let req = SolveRequest::min_makespan("prop", Arc::clone(&prepared), budget);

        // ground truth from the exact oracle (instances are kept small
        // enough that it always supports them)
        let exact = registry.get("exact").unwrap();
        prop_assert!(matches!(
            exact.supports(prepared.arc()),
            Capability::Supported
        ));
        let opt = exact.solve(&req, &BudgetContext::unbudgeted()).makespan.expect("exact solves");

        for solver in registry.iter() {
            if !solver.supports(prepared.arc()).is_supported() {
                continue;
            }
            let report = solver.solve(&req, &BudgetContext::unbudgeted());
            prop_assert_eq!(
                report.status.clone(),
                Status::Solved,
                "{} failed: {}",
                solver.name(),
                report.detail
            );
            let makespan = report.makespan.expect("solved");
            let used = report.budget_used.expect("solved");

            // flow solutions must pass the independent validator
            if let Some(sol) = &report.solution {
                validate(prepared.arc(), sol).expect("solution must validate");
                prop_assert_eq!(sol.makespan, makespan);
                prop_assert_eq!(sol.budget_used, used);
            }

            // the LP relaxation is a true lower bound on OPT
            if let Some(lp) = report.lp_makespan {
                prop_assert!(
                    lp <= opt as f64 + 1e-6,
                    "{}: LP bound {} exceeds OPT {}",
                    solver.name(),
                    lp,
                    opt
                );
            }

            match solver.name() {
                // path-reuse solvers: certified factors hold vs OPT
                // (and therefore vs the LP bound they report)
                "exact" | "sp-dp" => {
                    prop_assert_eq!(makespan, opt, "{} must be optimal", solver.name());
                    prop_assert!(used <= budget);
                }
                "bicriteria" => {
                    let mf = report.makespan_factor.unwrap();
                    let rf = report.resource_factor.unwrap();
                    prop_assert!(
                        makespan as f64 <= mf * report.lp_makespan.unwrap() + 1e-6,
                        "bicriteria: {} > {} · {}",
                        makespan, mf, report.lp_makespan.unwrap()
                    );
                    prop_assert!((used as f64) <= rf * budget as f64 + 1e-6);
                }
                "kway" | "recbinary" => {
                    let mf = report.makespan_factor.unwrap();
                    prop_assert!(
                        makespan as f64 <= mf * (opt as f64).max(1.0) + 1e-6,
                        "{}: {} > {} · OPT {}",
                        solver.name(), makespan, mf, opt
                    );
                    prop_assert!(used <= budget, "{} keeps the budget", solver.name());
                }
                "recbinary-improved" => {
                    let mf = report.makespan_factor.unwrap();
                    let rf = report.resource_factor.unwrap();
                    prop_assert!(makespan as f64 <= mf * (opt as f64).max(1.0) + 1e-6);
                    prop_assert!((used as f64) <= rf * budget as f64 + 1e-6);
                }
                // regime baselines: ordered by the §1 hierarchy
                "noreuse-exact" => {
                    prop_assert!(
                        makespan >= opt,
                        "no-reuse {} beats path-reuse OPT {}",
                        makespan, opt
                    );
                    prop_assert!(used <= budget);
                }
                "noreuse-bicriteria" => {
                    let rf = report.resource_factor.unwrap();
                    prop_assert!((used as f64) <= rf * budget as f64 + 1e-6);
                    // its LP bounds the *no-reuse* optimum, which is ≥ OPT;
                    // factor vs its own LP:
                    let mf = report.makespan_factor.unwrap();
                    prop_assert!(makespan as f64 <= mf * report.lp_makespan.unwrap() + 1e-6);
                }
                "global-greedy" => {
                    // the eager policy never idles, so best-of-both
                    // never exceeds the zero-resource makespan
                    prop_assert!(makespan <= base);
                    prop_assert!(used <= budget, "peak pool usage within budget");
                }
                other => prop_assert!(false, "untested solver {other} registered"),
            }
        }
    }

    /// The min-resource objective round-trips through the registry: at
    /// target = base makespan, the exact solver needs 0 units, and at
    /// target = exact optimum for a budget, it needs at most that
    /// budget.
    #[test]
    fn min_resource_objective_is_consistent(
        kind in 0usize..4,
        family in 0usize..2,
        seed in 0u64..5_000,
        budget in 0u64..10,
    ) {
        let registry = Registry::standard();
        let arc = generate(kind, family, seed);
        let base = arc.base_makespan();
        let prepared = Arc::new(PreparedInstance::new(arc));
        let exact = registry.get("exact").unwrap();

        let opt = exact
            .solve(
                &SolveRequest::min_makespan("p", Arc::clone(&prepared), budget),
                &BudgetContext::unbudgeted(),
            )
            .makespan
            .expect("solved");

        let at_base = exact.solve(
            &SolveRequest::min_resource("p", Arc::clone(&prepared), base),
            &BudgetContext::unbudgeted(),
        );
        prop_assert_eq!(at_base.status, Status::Solved);
        prop_assert_eq!(at_base.budget_used.unwrap(), 0, "base makespan is free");

        let at_opt = exact.solve(
            &SolveRequest::min_resource("p", Arc::clone(&prepared), opt),
            &BudgetContext::unbudgeted(),
        );
        prop_assert_eq!(at_opt.status, Status::Solved);
        prop_assert!(
            at_opt.budget_used.unwrap() <= budget,
            "inverting the tradeoff cannot need more than the budget"
        );
    }

    /// Observation 1.1 for the **global-pool regime** (Q1.2): on random
    /// instances, the schedule-granular replay of either greedy
    /// policy's schedule — every arc expanded at the level it held —
    /// finishes within the schedule's makespan, and the no-reuse
    /// replay does the same at its dedicated levels.
    #[test]
    fn regime_replays_respect_observation_1_1(
        kind in 0usize..4,
        family in 0usize..2,
        seed in 0u64..5_000,
        budget in 0u64..12,
    ) {
        let arc = generate(kind, family, seed);
        for policy in [rtt_core::GlobalPolicy::Eager, rtt_core::GlobalPolicy::Patient] {
            let s = rtt_core::global_reuse_schedule(&arc, budget, policy);
            rtt_core::verify_global_schedule(&arc, budget, &s)
                .expect("greedy schedule verifies");
            let cert = rtt_engine::certify_schedule(&arc, &s)
                .expect("finite schedule certifies");
            prop_assert!(
                cert.simulated <= s.makespan,
                "{policy:?}: simulated {} > schedule makespan {}",
                cert.simulated,
                s.makespan
            );
        }
        let nr = rtt_core::solve_noreuse_exact(&arc, budget);
        let cert = rtt_engine::certify_noreuse(&arc, &nr).expect("finite levels certify");
        prop_assert!(
            cert.simulated <= nr.makespan,
            "no-reuse: simulated {} > makespan {}",
            cert.simulated,
            nr.makespan
        );
    }

    /// `--solver all` through the executor path: every emitted report
    /// either solved or failed for a declared reason, never panicked —
    /// and at least the always-applicable solvers answered.
    #[test]
    fn all_selection_is_total(
        kind in 0usize..4,
        family in 0usize..2,
        seed in 0u64..2_000,
        budget in 0u64..8,
    ) {
        let registry = Registry::standard();
        let arc = generate(kind, family, seed);
        let prepared = Arc::new(PreparedInstance::new(arc));
        let mut req = SolveRequest::min_makespan("p", prepared, budget);
        req.solver = SolverSelection::All;
        let reports = rtt_engine::execute_one(&registry, &req, Instant::now());
        prop_assert!(reports.iter().any(|r| r.solver == "bicriteria"));
        prop_assert!(reports.iter().any(|r| r.solver == "global-greedy"));
        for r in &reports {
            prop_assert_eq!(
                r.status.clone(),
                Status::Solved,
                "{} failed on a supported instance: {}",
                r.solver,
                r.detail
            );
        }
    }
}
