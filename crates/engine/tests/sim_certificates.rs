//! End-to-end simulation certification: every routed solution the
//! executor emits — across the whole registry, on race-derived
//! instances of both reducer families — carries an Observation 1.1
//! certificate whose simulated finish is within the reported makespan.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtt_core::{Instance, ReducerFamily};
use rtt_dag::gen;
use rtt_engine::{execute_one, PreparedInstance, Registry, SolveRequest, Status};
use std::sync::Arc;
use std::time::Instant;

fn race_arc(seed: u64, family: ReducerFamily) -> rtt_core::ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = gen::random_race_dag(&mut rng, 6, 8);
    let inst = Instance::race_dag(&tt.dag, |w| family.duration(w)).unwrap();
    rtt_core::to_arc_form(&inst).0
}

#[test]
fn every_routed_solution_is_sim_certified() {
    let registry = Registry::standard();
    for family in [ReducerFamily::KWay, ReducerFamily::RecursiveBinary] {
        for seed in [1u64, 2, 3] {
            let prep = Arc::new(PreparedInstance::new(race_arc(seed, family)));
            for budget in [0u64, 4, 9] {
                let req =
                    SolveRequest::min_makespan(format!("{family}-{seed}-{budget}"), Arc::clone(&prep), budget);
                for report in execute_one(&registry, &req, Instant::now()) {
                    assert_eq!(report.status, Status::Solved, "{}: {}", report.solver, report.detail);
                    if let Some(sol) = &report.solution {
                        let cert = report.sim.unwrap_or_else(|| {
                            panic!("{}: routed solution without a sim certificate", report.solver)
                        });
                        assert!(
                            cert.simulated <= cert.bound,
                            "{}: simulated {} > bound {}",
                            report.solver,
                            cert.simulated,
                            cert.bound
                        );
                        assert_eq!(cert.bound, sol.makespan);
                        assert!(cert.expanded_updates > 0 || sol.makespan == 0);
                    } else {
                        // regime baselines certify their own forms and
                        // carry no routed flow — no sim field expected
                        assert!(report.sim.is_none());
                    }
                }
            }
        }
    }
}

#[test]
fn sweep_points_carry_sim_certificates() {
    let prep = Arc::new(PreparedInstance::new(race_arc(
        7,
        ReducerFamily::RecursiveBinary,
    )));
    let budgets: Vec<u64> = (0..8).collect();
    let req = SolveRequest::sweep("curve", prep, budgets.clone());
    let reports = execute_one(&Registry::standard(), &req, Instant::now());
    assert_eq!(reports.len(), budgets.len());
    for r in &reports {
        assert_eq!(r.status, Status::Solved, "{}", r.detail);
        let cert = r.sim.expect("curve points are rounded routed solutions");
        assert!(cert.simulated <= cert.bound);
        assert_eq!(cert.bound, r.makespan.unwrap());
    }
}
