//! End-to-end simulation certification: **every** solved report the
//! executor emits — across the whole registry, all nine pipelines, on
//! race-derived instances of both reducer families — carries an
//! Observation 1.1 certificate whose simulated finish is within the
//! reported makespan. Since PR 5 that includes the regime baselines:
//! no-reuse solutions replay at their dedicated levels, global-pool
//! schedules replay schedule-granularly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtt_core::{Instance, ReducerFamily};
use rtt_dag::gen;
use rtt_engine::{execute_one, PreparedInstance, Registry, SolveRequest, Status};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

fn race_arc(seed: u64, family: ReducerFamily) -> rtt_core::ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = gen::random_race_dag(&mut rng, 6, 8);
    let inst = Instance::race_dag(&tt.dag, |w| family.duration(w)).unwrap();
    rtt_core::to_arc_form(&inst).0
}

/// A two-terminal series-parallel race instance, so the `sp-dp`
/// pipeline joins the fan-out too.
fn sp_arc(seed: u64, family: ReducerFamily) -> rtt_core::ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = gen::random_sp(&mut rng, 5).tt;
    let inst = Instance::race_dag(&tt.dag, |w| family.duration(w)).unwrap();
    rtt_core::to_arc_form(&inst).0
}

#[test]
fn every_solved_report_is_sim_certified_registry_wide() {
    let registry = Registry::standard();
    let mut certified: HashSet<&'static str> = HashSet::new();
    for family in [ReducerFamily::KWay, ReducerFamily::RecursiveBinary] {
        for seed in [1u64, 2, 3] {
            let arc = if seed == 3 {
                sp_arc(seed, family)
            } else {
                race_arc(seed, family)
            };
            let prep = Arc::new(PreparedInstance::new(arc));
            for budget in [0u64, 4, 9] {
                let req = SolveRequest::min_makespan(
                    format!("{family}-{seed}-{budget}"),
                    Arc::clone(&prep),
                    budget,
                );
                for report in execute_one(&registry, &req, Instant::now()) {
                    assert_eq!(
                        report.status,
                        Status::Solved,
                        "{}: {}",
                        report.solver,
                        report.detail
                    );
                    let cert = report.sim.unwrap_or_else(|| {
                        panic!(
                            "{}: solved report without a sim certificate",
                            report.solver
                        )
                    });
                    assert!(
                        cert.simulated <= cert.bound,
                        "{}: simulated {} > bound {}",
                        report.solver,
                        cert.simulated,
                        cert.bound
                    );
                    assert_eq!(cert.bound, report.makespan.unwrap());
                    assert!(cert.expanded_updates > 0 || cert.bound == 0);
                    // exactly one solution form backs the certificate…
                    let forms = usize::from(report.solution.is_some())
                        + usize::from(report.noreuse.is_some())
                        + usize::from(report.schedule.is_some());
                    assert_eq!(forms, 1, "{}: ambiguous solution form", report.solver);
                    // …and it is the one the solver declares — the
                    // `rtt solvers` column and the bench-pr5 coverage
                    // rows print solution_form(), so a drift between
                    // declaration and populated field would ship a lie
                    let declared = registry
                        .get(report.solver)
                        .expect("report names a registered solver")
                        .solution_form();
                    let actual = if report.solution.is_some() {
                        rtt_engine::SolutionForm::Routed
                    } else if report.noreuse.is_some() {
                        rtt_engine::SolutionForm::NoReuse
                    } else {
                        rtt_engine::SolutionForm::Schedule
                    };
                    assert_eq!(
                        declared, actual,
                        "{}: declared solution form disagrees with the report",
                        report.solver
                    );
                    certified.insert(report.solver);
                }
            }
        }
    }
    // the fan-out across both families must have exercised every
    // registered pipeline — none may ship uncertified
    let all: HashSet<&'static str> = registry.names().into_iter().collect();
    assert_eq!(
        certified, all,
        "some registry pipeline never produced a certified report"
    );
}

#[test]
fn sweep_points_carry_sim_certificates() {
    let prep = Arc::new(PreparedInstance::new(race_arc(
        7,
        ReducerFamily::RecursiveBinary,
    )));
    let budgets: Vec<u64> = (0..8).collect();
    let req = SolveRequest::sweep("curve", prep, budgets.clone());
    let reports = execute_one(&Registry::standard(), &req, Instant::now());
    assert_eq!(reports.len(), budgets.len());
    for r in &reports {
        assert_eq!(r.status, Status::Solved, "{}", r.detail);
        let cert = r.sim.expect("curve points are rounded routed solutions");
        assert!(cert.simulated <= cert.bound);
        assert_eq!(cert.bound, r.makespan.unwrap());
    }
}

/// The budget-0 anchor point, certified for every regime (the PR-4
/// regression pinned it for routed solutions only; see also the
/// `rtt_cli::args` / `rtt_engine::curve` budget-0 tests): at zero
/// budget every pipeline reports the base makespan, and the replayed
/// execution confirms it physically.
#[test]
fn budget_zero_anchor_is_certified_for_all_regimes() {
    let registry = Registry::standard();
    for family in [ReducerFamily::KWay, ReducerFamily::RecursiveBinary] {
        let arc = race_arc(11, family);
        let base = arc.base_makespan();
        let prep = Arc::new(PreparedInstance::new(arc));
        let req = SolveRequest::min_makespan("anchor", Arc::clone(&prep), 0);
        let reports = execute_one(&registry, &req, Instant::now());
        // the three regime baselines must be among the answers
        for name in ["noreuse-exact", "noreuse-bicriteria", "global-greedy"] {
            let r = reports
                .iter()
                .find(|r| r.solver == name)
                .unwrap_or_else(|| panic!("{name} missing from the fan-out"));
            assert_eq!(r.status, Status::Solved, "{name}: {}", r.detail);
            assert_eq!(r.makespan, Some(base), "{name}: zero budget = base makespan");
            assert_eq!(r.budget_used, Some(0), "{name}");
            let cert = r.sim.unwrap_or_else(|| panic!("{name}: anchor not certified"));
            assert_eq!(cert.bound, base, "{name}");
            assert!(cert.simulated <= base, "{name}");
        }
    }
}
