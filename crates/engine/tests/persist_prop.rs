//! Property and corruption tests for the `rtt-cache-v1` spill format
//! (PR 8): a save → load round trip must serve byte-equivalent reports
//! through the full re-certification path, and a corrupt file must be
//! rejected with a structured error and **zero** entries installed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtt_engine::{
    persist, run_batch_cached, PersistError, PreparedInstance, Registry, ReuseCache, SolveReport,
    SolveRequest, Status,
};
use rtt_core::ArcInstance;
use rtt_dag::gen;
use rtt_duration::Duration;
use std::path::PathBuf;
use std::sync::Arc;

fn generate(kind: usize, family: usize, seed: u64) -> ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = match kind % 3 {
        0 => gen::random_sp(&mut rng, 3).tt,
        1 => gen::layered(&mut rng, 3, 2, 0.4),
        _ => gen::chain(2 + (seed as usize % 3)),
    };
    let fam: fn(u64) -> Duration = match family % 2 {
        0 => Duration::recursive_binary,
        _ => Duration::kway,
    };
    let inst = rtt_core::Instance::race_dag(&tt.dag, fam).expect("generated DAG is valid");
    rtt_core::to_arc_form(&inst).0
}

/// A mixed corpus over one instance: a sweep, its duplicate, and a
/// single min-makespan solve — everything the solution tier caches.
fn corpus(kind: usize, family: usize, seed: u64, hi: u64) -> Vec<SolveRequest> {
    let prep = Arc::new(PreparedInstance::new(generate(kind, family, seed)));
    let budgets: Vec<u64> = (0..=hi).collect();
    vec![
        SolveRequest::sweep("s1", prep.clone(), budgets.clone()),
        SolveRequest::sweep("s2", prep.clone(), budgets),
        {
            let mut r = SolveRequest::min_makespan("q1", prep, hi);
            r.solver = rtt_engine::SolverSelection::Named("bicriteria".into());
            r
        },
    ]
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rtt-persist-{tag}-{}.cache", std::process::id()))
}

/// The wire-relevant fields of a report (everything `report_line`
/// renders, plus the certificate): id, solver, status, the integer
/// fields, the float fields as bit patterns, and the work counter.
type WireFields = (String, &'static str, Status, Vec<Option<u64>>, Vec<Option<u64>>, u64);

fn wire_fields(r: &SolveReport) -> WireFields {
    let floats = [r.lp_makespan, r.lp_budget, r.makespan_factor, r.resource_factor]
        .iter()
        .map(|f| f.map(f64::to_bits))
        .collect();
    let ints = vec![
        r.sweep_budget,
        r.makespan,
        r.budget_used,
        r.sim.map(|s| s.simulated),
        r.sim.map(|s| s.bound),
    ];
    (r.id.clone(), r.solver, r.status.clone(), ints, floats, r.work)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// save → load → serve: a fresh process restarting from the spill
    /// answers the same corpus with the same wire fields as the run
    /// that populated the cache, and actually serves from the loaded
    /// tier instead of re-solving.
    #[test]
    fn spill_round_trip_serves_identical_reports(
        kind in 0usize..3,
        family in 0usize..2,
        seed in 0u64..2_000,
        hi in 2u64..8,
    ) {
        let registry = Registry::standard();
        let path = tmp_path(&format!("rt-{kind}-{family}-{seed}-{hi}"));

        // first life: solve, populating the cache, then spill
        let warm = ReuseCache::new(64);
        let first = run_batch_cached(&registry, corpus(kind, family, seed, hi), 1, Some(&warm));
        prop_assert!(first.reports.iter().all(|r| r.status == Status::Solved));
        let saved = persist::save(&warm, &path).expect("spill saves");
        prop_assert!(saved > 0, "a solved corpus must spill entries");

        // restart: fresh cache, loaded from disk, same corpus
        let restarted = ReuseCache::new(64);
        let loaded = persist::load(&restarted, &path, &registry).expect("spill loads");
        prop_assert_eq!(loaded, saved, "every saved entry loads");
        let second = run_batch_cached(&registry, corpus(kind, family, seed, hi), 1, Some(&restarted));

        prop_assert_eq!(first.reports.len(), second.reports.len());
        for (a, b) in first.reports.iter().zip(&second.reports) {
            prop_assert_eq!(wire_fields(a), wire_fields(b));
        }
        // the loaded entries were *served*, through re-certification,
        // not silently ignored
        let stats = restarted.stats();
        prop_assert!(
            stats.solution_hits > 0,
            "restart must serve from the loaded tier: {stats:?}"
        );
        std::fs::remove_file(&path).ok();
    }
}

/// Populates a cache with one solved sweep + one single solve and
/// spills it, returning the spill text.
fn spilled_text(tag: &str) -> String {
    let registry = Registry::standard();
    let warm = ReuseCache::new(64);
    let out = run_batch_cached(&registry, corpus(0, 0, 7, 4), 1, Some(&warm));
    assert!(out.reports.iter().all(|r| r.status == Status::Solved));
    let path = tmp_path(tag);
    assert!(persist::save(&warm, &path).expect("spill saves") >= 2);
    let text = std::fs::read_to_string(&path).expect("spill is readable");
    std::fs::remove_file(&path).ok();
    text
}

/// Asserts that loading `text` fails with `check(err)` and that the
/// target cache ends up with zero installed entries.
fn assert_rejected(tag: &str, text: &str, check: impl FnOnce(&PersistError) -> bool) {
    let path = tmp_path(tag);
    std::fs::write(&path, text).unwrap();
    let cache = ReuseCache::new(64);
    let err = persist::load(&cache, &path, &Registry::standard())
        .expect_err("a corrupt spill must be rejected");
    assert!(check(&err), "unexpected rejection: {err}");
    assert!(
        cache.export_solutions().is_empty(),
        "rejection must install zero entries ({err})"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_spill_is_rejected_with_zero_entries() {
    let text = spilled_text("trunc-src");
    // drop the last entry line; the header still declares it
    let mut lines: Vec<&str> = text.lines().collect();
    lines.pop();
    let truncated = lines.join("\n");
    assert_rejected("trunc", &truncated, |e| {
        matches!(e, PersistError::Truncated { expected, found } if found + 1 == *expected)
    });
}

#[test]
fn flipped_key_byte_fails_the_checksum_with_zero_entries() {
    let text = spilled_text("flip-src");
    // flip one byte inside the first entry's key (line 2 starts with
    // the escaped key field)
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let mut bytes = lines[1].clone().into_bytes();
    bytes[2] ^= 0x01; // ASCII key prefix, stays valid UTF-8
    lines[1] = String::from_utf8(bytes).expect("still UTF-8");
    let tampered = lines.join("\n") + "\n";
    assert_rejected("flip", &tampered, |e| {
        matches!(e, PersistError::Entry { line: 2, reason } if reason.contains("checksum"))
    });
}

#[test]
fn wrong_format_tag_is_rejected_with_zero_entries() {
    let text = spilled_text("tag-src");
    let wrong = text.replacen("rtt-cache-v1", "rtt-cache-v9", 1);
    assert_rejected("tag", &wrong, |e| {
        matches!(e, PersistError::Version { found } if found == "rtt-cache-v9")
    });
}

#[test]
fn wrong_fingerprint_tag_is_rejected_with_zero_entries() {
    let text = spilled_text("fp-src");
    let wrong = text.replacen("fp=rtt-fp-v1", "fp=rtt-fp-v0", 1);
    assert_rejected("fp", &wrong, |e| {
        matches!(e, PersistError::Fingerprint { found } if found == "rtt-fp-v0")
    });
}
